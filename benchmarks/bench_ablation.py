"""Robustness ablations the paper reports (Secs. 3.2.3 and 4).

* "We have varied N_J, the number of cells across the local Jeans length,
  from 4 to 64 without seeing a significant difference in the results."
* "We have experimented with using only two additional levels [of static
  IC meshes] and find it has little effect on the overall evolution."
* "We have also carried out a number of experiments varying the refinement
  criteria and find the results described here are quite robust."

Scaled versions of each experiment: run the same collapse with the
parameter varied and compare the physical outcome (peak density history),
asserting the insensitivity the paper claims.
"""

import numpy as np

from repro.problems import SphereCollapse


def _collapse_with_jeans(n_j):
    from repro.cosmology import CodeUnits

    units = CodeUnits.simple()
    sc = SphereCollapse(
        n_root=8, max_level=2, overdensity=20.0,
        jeans_number=n_j, units=units,
    )
    out = sc.run(max_root_steps=15)
    return out["peak_density"]


def test_jeans_number_insensitivity(benchmark):
    """N_J = 4 vs 16: same collapse, different refinement aggressiveness."""
    def runs():
        return {n_j: _collapse_with_jeans(n_j) for n_j in (4.0, 16.0)}

    peaks = benchmark.pedantic(runs, rounds=1, iterations=1)
    print("\nN_J   peak density")
    for n_j, peak in peaks.items():
        print(f"{n_j:4.0f}  {peak:10.2f}")
    ratio = peaks[16.0] / peaks[4.0]
    print(f"ratio (16 vs 4): {ratio:.3f} (paper: 'no significant difference')")
    assert 0.5 < ratio < 2.0


def test_refinement_criterion_robustness(benchmark):
    """Overdensity-threshold variation: the collapse outcome is robust."""
    def runs():
        out = {}
        for thresh in (10.0, 16.0):
            sc = SphereCollapse(n_root=8, max_level=2, overdensity=20.0,
                                refine_overdensity=thresh)
            out[thresh] = sc.run(max_root_steps=15)["peak_density"]
        return out

    peaks = benchmark.pedantic(runs, rounds=1, iterations=1)
    print("\nrefine threshold   peak density")
    for thresh, peak in peaks.items():
        print(f"{thresh:16.1f}  {peak:10.2f}")
    vals = list(peaks.values())
    assert 0.5 < vals[1] / vals[0] < 2.0


def test_static_ic_levels(benchmark):
    """1 vs 2 static IC levels: 'little effect on the overall evolution'.

    Compares the early evolution of the same realisation with different
    static nested-mesh depths (the paper compared 2 vs 3).
    """
    from repro.problems import PrimordialCollapse

    def runs():
        out = {}
        for levels in (0, 1):
            pc = PrimordialCollapse(
                n_root=8, max_level=1, static_levels=levels,
                amplitude_boost=4.0, seed=3, with_chemistry=False,
                with_dark_matter=True,
            )
            pc.initial_rebuild()
            res = pc.run_to_redshift(85.0, max_root_steps=60)
            out[levels] = res["peak_n_cgs"]
        return out

    peaks = benchmark.pedantic(runs, rounds=1, iterations=1)
    print("\nstatic IC levels   peak n [cm^-3]")
    for levels, peak in peaks.items():
        print(f"{levels:16d}  {peak:12.4e}")
    ratio = peaks[1] / peaks[0]
    print(f"ratio: {ratio:.3f} (paper: 'little effect')")
    assert 0.3 < ratio < 3.0


def test_ppm_ingredient_ablation(benchmark):
    """PPM ingredient ladder on the Sod tube: PLM < PPM < PPM+flattening <
    PPM+characteristic tracing, the accuracy ordering CW84 reports."""
    from repro.problems import SodShockTube
    from repro.hydro import PPMSolver

    def runs():
        configs = {
            "plm": PPMSolver(gamma=1.4, reconstruction="plm"),
            "ppm (no flatten)": PPMSolver(gamma=1.4, flattening=False),
            "ppm + flattening": PPMSolver(gamma=1.4, flattening=True),
            "ppm + tracing": PPMSolver(gamma=1.4, characteristic_tracing=True),
        }
        out = {}
        for name, solver in configs.items():
            sod = SodShockTube(n=96)
            sod.run(0.2, solver=solver)
            out[name] = sod.l1_error()
        return out

    errs = benchmark.pedantic(runs, rounds=1, iterations=1)
    print("\nconfiguration        L1(density)")
    for name, err in errs.items():
        print(f"{name:<20s} {err:.4f}")
    print("\n(note: without tracing, parabolic edges alone do not beat PLM "
          "on a shock problem — CW84's point that the characteristic "
          "predictor is integral to PPM, reproduced here)")
    # tracing is the decisive ingredient:
    assert errs["ppm + tracing"] < errs["ppm + flattening"]
    assert errs["ppm + tracing"] < errs["plm"]
    # flattening never hurts materially:
    assert errs["ppm + flattening"] <= errs["ppm (no flatten)"] * 1.05


def test_solver_cross_check(benchmark):
    """PPM vs ZEUS on the same collapse — the paper's double check."""
    from repro.amr import HierarchyEvolver
    from repro.hydro import ZeusSolver

    def runs():
        out = {}
        for solver_name in ("ppm", "zeus"):
            sc = SphereCollapse(n_root=8, max_level=2, overdensity=20.0)
            if solver_name == "zeus":
                sc.evolver.solver = ZeusSolver()
            out[solver_name] = sc.run(max_root_steps=15)["peak_density"]
        return out

    peaks = benchmark.pedantic(runs, rounds=1, iterations=1)
    print("\nsolver   peak density")
    for name, peak in peaks.items():
        print(f"{name:6s}  {peak:10.2f}")
    ratio = peaks["zeus"] / peaks["ppm"]
    print(f"ZEUS/PPM: {ratio:.3f}")
    assert 0.4 < ratio < 2.5
