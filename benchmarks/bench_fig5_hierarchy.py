"""Figure 5: hierarchy growth — the four panels.

Paper Fig. 5: (top-left) maximum level vs time, (top-right) number of
grids vs time, (bottom-left) grids per level at an early and a late time,
(bottom-right) relative work per level; plus the Sec. 5 discussion of
memory usage and alloc/free traffic.

Paper values for the hero run: 34 levels, >8000 grids, late-time jump in
depth, work concentrated at the deepest levels late, thousands of rebuild
allocations, up to 20 GB.  The scaled run reproduces the *shapes*:
monotonic-then-jumping depth, grid count growth, the early/late shift in
the grids-per-level distribution, and deep-level work concentration.
"""

import numpy as np


def test_fig5_hierarchy_growth(benchmark, sphere_run):
    sc = benchmark.pedantic(lambda: sphere_run, rounds=1, iterations=1)
    stats = sc.stats
    series = stats.series()
    h = sc.hierarchy

    print("\n--- Fig 5 top-left: maximum level vs time ---")
    t, lv = series["time"], series["max_level"]
    for i in np.linspace(0, len(t) - 1, min(10, len(t))).astype(int):
        print(f"  t={t[i]:.4f}  max_level={lv[i]}")
    assert lv[-1] >= lv[0]
    assert lv[-1] >= 2, "collapse must deepen the hierarchy"

    print("--- Fig 5 top-right: number of grids vs time ---")
    ng = series["n_grids"]
    for i in np.linspace(0, len(t) - 1, min(10, len(t))).astype(int):
        print(f"  t={t[i]:.4f}  grids={ng[i]}")
    # the hierarchy stays populated and respond to the flow (the initial
    # rebuild already refines the sphere, so growth is not strictly
    # monotone at this scale — the paper's slow-growth-then-jump shape
    # appears as sustained high grid counts)
    assert ng.max() >= ng[0]
    assert ng[-1] > 10 * 1, "collapse must sustain a populated hierarchy"

    print("--- Fig 5 bottom-left: grids per level, early vs late ---")
    times = sorted(stats.snapshots)
    early, late = stats.snapshots[times[0]], stats.snapshots[times[-1]]
    print(f"  early {early}")
    print(f"  late  {late}")
    assert len(late) >= len(early)

    print("--- Fig 5 bottom-right: work per level (normalised) ---")
    work = stats.work_per_level(h)
    for lvl, w in enumerate(work):
        print(f"  level {lvl}: {w:.3f}")
    # late in the collapse the deepest levels dominate the work
    assert np.argmax(work) >= 1, "refined levels dominate the work"

    print("--- Sec 5: memory & allocation traffic ---")
    print(f"  peak memory      : {series['memory_bytes'].max() / 1e6:.1f} MB "
          f"(paper: up to 20 GB at hero scale)")
    print(f"  alloc/free events: {series['alloc_events'][-1]} "
          f"(paper: 'extremely large number ... entire hierarchy rebuilt "
          f"thousands of times')")
    assert series["alloc_events"][-1] > 100

    print(f"\n  final SDR = {h.spatial_dynamic_range():.0f} "
          f"(paper: 1e12 at 34 levels; scaled run capped at "
          f"{sc.max_level} levels)")
