"""Figure 4: radial profiles of the collapsing primordial cloud.

Paper Fig. 4 (panels A-E): number density, enclosed gas mass, H2/HI mass
fractions, temperature, and radial velocity / sound speed as functions of
radius, at seven output times.

The hero run reached n ~ 1e13 cm^-3 at r ~ 1e-6 pc; the scaled run follows
the same object through its early collapse.  What must reproduce (and is
asserted):

* panel A — central density grows monotonically between outputs and the
  profile steepens toward the centre (the -2-ish envelope slope);
* panel B — enclosed mass increases monotonically with radius;
* panel C — the H2 fraction is highest at the centre and grows with time
  (the non-equilibrium H- channel), with f_H2 ~ 1e-4..1e-3 at this stage;
* panel D — the dense gas stays far below the virial temperature
  (radiative cooling at work), within the 100-1000 K band of the paper's
  early outputs;
* panel E — the collapsing region shows inward radial velocities.
"""

import numpy as np


def test_fig4_radial_profiles(benchmark, collapse_run):
    run = benchmark.pedantic(lambda: collapse_run, rounds=1, iterations=1)
    assert len(run.snapshots) >= 2, "need multiple output times"

    print(f"\n{len(run.snapshots)} output times "
          f"(paper: 7 outputs from z=19 to +9 Myr ... +200 yr)")

    centre_density = []
    for snap in run.snapshots:
        prof = snap["profiles"]
        nd = prof["number_density"]
        ok = np.isfinite(nd)
        centre_density.append(np.nanmax(nd))
        print(f"\n--- output {snap['label']}  (z = {snap['redshift']:.1f}, "
              f"peak n = {snap['peak_n_cgs']:.2e} cm^-3) ---")
        print(f"{'r [pc]':>10} {'n [cm^-3]':>11} {'M(<r) [Msun]':>13} "
              f"{'T [K]':>8} {'v_r [km/s]':>11} {'f_H2':>10}")
        for i in range(len(prof["radius"])):
            if np.isfinite(nd[i]):
                print(
                    f"{prof['radius_pc'][i]:10.3f} {nd[i]:11.3e} "
                    f"{prof['enclosed_gas_mass_msun'][i]:13.3e} "
                    f"{prof['temperature'][i]:8.1f} "
                    f"{prof['radial_velocity_kms'][i]:11.3f} "
                    f"{prof['f_H2'][i]:10.2e}"
                )

    last = run.snapshots[-1]["profiles"]
    ok = np.isfinite(last["number_density"])

    # panel A: central density grows between outputs
    assert centre_density[-1] >= centre_density[0], "collapse stalls"
    # panel A: the profile decreases outward over the resolved range
    nd = last["number_density"][ok]
    assert nd[0] == np.nanmax(nd), "density must peak at the centre"
    assert nd[0] / nd[-1] > 3.0, "profile must be centrally concentrated"

    # panel B: enclosed mass monotone
    m = last["enclosed_gas_mass_msun"]
    assert np.all(np.diff(m) >= -1e-12)
    print(f"\nhalo gas mass inside the box: {m[-1]:.2e} Msun "
          f"(paper's halo: 5.4e5 Msun total at z=19)")

    # panel C: H2 enhanced at the centre and growing with time
    f_h2_first = np.nanmax(run.snapshots[0]["profiles"]["f_H2"])
    f_h2_last = np.nanmax(last["f_H2"])
    print(f"max f_H2: {f_h2_first:.2e} -> {f_h2_last:.2e} "
          f"(paper panel C: ~1e-3 'molecular cloud' stage)")
    assert f_h2_last >= f_h2_first * 0.9
    assert f_h2_last > 1e-6

    # panel D: cooled gas, not virial — central T in the paper's cold band
    t_centre = last["temperature"][ok][0]
    print(f"central T = {t_centre:.0f} K (paper panel D: few hundred K)")
    assert t_centre < 5000.0

    # panel E: infall somewhere in the collapsing envelope
    vr = last["radial_velocity_kms"][np.isfinite(last["radial_velocity_kms"])]
    print(f"min v_r = {vr.min():.3f} km/s (negative = infall)")
    assert vr.min() < 0.0
