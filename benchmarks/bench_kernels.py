"""Kernel-tier benchmark: compiled inner loops vs. the NumPy reference.

The compiled kernel tier (``repro.kernels``) takes over the hottest inner
loops — the Riemann fluxes (HLLC and two-shock), PPM reconstruction,
characteristic tracing, and the chemistry rate-table blend — with
njit/cffi flat loops that are **bitwise identical** to the vectorised
reference (the parity suite in ``tests/test_kernels.py`` enforces that).

This bench measures what that buys:

* per-kernel microbenchmarks on realistic sweep shapes (a 64-cell sweep
  across a few thousand transverse columns — the shape the PPM solver
  actually feeds these kernels at hero-run depth), NumPy vs. the best
  compiled backend that loads on this host;
* an end-to-end primordial-collapse run (chemistry on, so every kernel
  family participates) stepped under both tiers, with the hierarchy
  fingerprints asserted bitwise-equal — the speedup you get for free
  without touching results.

Writes ``BENCH_kernels.json`` next to this file.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--smoke] [--out X.json]

or via pytest (smoke configuration)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -q
"""

from __future__ import annotations

import argparse
import json
import time
import warnings
from pathlib import Path

import numpy as np

from repro.chemistry.rates import blend_table_numpy
from repro.hydro.riemann import hllc_flux, two_shock_flux
from repro.hydro.reconstruction import ppm_reconstruct
from repro.hydro.tracing import trace_states_numpy
from repro.kernels import dispatch


def _best(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _compiled_backend() -> str | None:
    """Best compiled backend on this host (numba preferred), or None."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        resolved = dispatch.resolve_backend("auto")
    return None if resolved == "numpy" else resolved


# ------------------------------------------------------------------- micro
def micro(config: dict, backend: str) -> dict:
    """Per-kernel best-of timings, NumPy reference vs. compiled."""
    rng = np.random.default_rng(0)
    n_faces = config["n_faces"]
    n_sweep, n_cols = config["sweep_shape"]
    reps = config["repeats"]

    def faces():
        return (rng.random(n_faces) + 0.5,
                0.5 * rng.standard_normal(n_faces),
                0.2 * rng.standard_normal(n_faces),
                0.2 * rng.standard_normal(n_faces),
                rng.random(n_faces) + 0.5)

    left, right = faces(), faces()
    q = rng.random((n_sweep, n_cols)) + 0.5
    rho = rng.random((n_sweep, n_cols)) + 0.3
    p = rng.random((n_sweep, n_cols)) + 0.2
    u = 0.3 * rng.standard_normal((n_sweep, n_cols))
    v = 0.3 * rng.standard_normal((n_sweep, n_cols))
    w = 0.3 * rng.standard_normal((n_sweep, n_cols))
    logtab = rng.standard_normal((12, 400))
    idx = rng.integers(0, 399, size=config["n_cells_chem"]).astype(np.intp)
    wgt = rng.random(config["n_cells_chem"])

    cases = {
        "riemann.hllc": (lambda fn: fn(left, right, 5.0 / 3.0), hllc_flux),
        "riemann.two_shock": (lambda fn: fn(left, right, 5.0 / 3.0),
                              two_shock_flux),
        "reconstruct.ppm": (lambda fn: fn(q), ppm_reconstruct),
        "trace.states": (lambda fn: fn(rho, u, v, w, p, 0.3, 5.0 / 3.0),
                         trace_states_numpy),
        "chem.blend": (lambda fn: fn(logtab, idx, wgt), blend_table_numpy),
    }

    dispatch.set_backend(backend, env=False)
    dispatch.warm()
    out = {}
    for name, (call, ref) in cases.items():
        compiled = dispatch._impls[(backend, name)]
        # bitwise parity on the bench inputs, then timing
        ref_out = call(ref)
        got_out = call(compiled)
        flat_r = ref_out if isinstance(ref_out, np.ndarray) else \
            [a for part in ref_out
             for a in (part if isinstance(part, tuple) else (part,))]
        flat_g = got_out if isinstance(got_out, np.ndarray) else \
            [a for part in got_out
             for a in (part if isinstance(part, tuple) else (part,))]
        if isinstance(flat_r, np.ndarray):
            assert np.array_equal(flat_r, flat_g, equal_nan=True)
        else:
            for a, b in zip(flat_r, flat_g):
                assert np.array_equal(a, b, equal_nan=True)
        t_ref = _best(lambda: call(ref), reps)
        t_cmp = _best(lambda: call(compiled), reps)
        out[name] = {
            "numpy_s": t_ref,
            f"{backend}_s": t_cmp,
            "speedup": t_ref / t_cmp,
        }
    return out


# -------------------------------------------------------------- end-to-end
def end_to_end(config: dict, backend: str) -> dict:
    """Step the collapse problem under both tiers; fingerprints must match."""
    from repro.problems import PrimordialCollapse

    def run_with(tier: str):
        dispatch.set_backend(tier, env=False)
        dispatch.warm()
        dispatch.reset_counters()
        problem = PrimordialCollapse(
            n_root=config["n_root"], max_level=config["max_level"],
            amplitude_boost=4.0, mass_refine_factor=8.0,
            with_chemistry=config["with_chemistry"],
        )
        problem.initial_rebuild()
        t0 = time.perf_counter()
        problem.run_to_redshift(50.0, max_root_steps=config["steps"])
        wall = time.perf_counter() - t0
        calls = {k: c for k, (c, _) in dispatch.counters_totals().items()}
        return problem.hierarchy.fingerprint(), wall, calls

    fp_np, wall_np, _ = run_with("numpy")
    fp_cmp, wall_cmp, calls = run_with(backend)
    assert fp_np == fp_cmp, (
        f"kernel tier changed the physics: numpy fingerprint {fp_np!r} "
        f"!= {backend} fingerprint {fp_cmp!r}"
    )
    return {
        "fingerprints_match": True,
        "numpy_s": wall_np,
        f"{backend}_s": wall_cmp,
        "speedup": wall_np / wall_cmp,
        "steps": config["steps"],
        "kernel_calls": calls,
    }


def run(config: dict) -> dict:
    backend = _compiled_backend()
    if backend is None:
        return {"compiled_backend": None,
                "note": "no compiled backend available on this host"}
    try:
        return {
            "compiled_backend": backend,
            "micro": micro(config, backend),
            "end_to_end": end_to_end(config, backend),
        }
    finally:
        dispatch.set_backend("numpy", env=False)


# sweep shapes match what the PPM solver feeds the kernels on a deep run:
# a ~64-cell pencil across thousands of transverse columns
SMOKE = {"n_faces": 64 * 64 * 4, "sweep_shape": (32, 1024),
         "n_cells_chem": 16384, "repeats": 2,
         "n_root": 8, "max_level": 1, "with_chemistry": False, "steps": 2}
FULL = {"n_faces": 64 * 64 * 16, "sweep_shape": (64, 4096),
        "n_cells_chem": 65536, "repeats": 5,
        "n_root": 8, "max_level": 2, "with_chemistry": True, "steps": 4}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small configuration for CI")
    ap.add_argument("--out",
                    default=str(Path(__file__).parent / "BENCH_kernels.json"))
    args = ap.parse_args(argv)
    config = SMOKE if args.smoke else FULL
    results = run(config)
    payload = {
        "bench": "kernels",
        "mode": "smoke" if args.smoke else "full",
        "config": config,
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {args.out}")
    return 0


def test_kernels_smoke():
    """Pytest entry: compiled Riemann/reconstruction beat NumPy >= 2x in
    the noisy smoke configuration (the committed full-mode JSON records
    the >= 3x steady-state numbers) and the end-to-end step is bitwise."""
    import pytest

    results = run(SMOKE)
    if results["compiled_backend"] is None:
        pytest.skip("no compiled backend available")
    micro_r = results["micro"]
    assert micro_r["riemann.hllc"]["speedup"] >= 2.0, micro_r["riemann.hllc"]
    assert micro_r["reconstruct.ppm"]["speedup"] >= 2.0, \
        micro_r["reconstruct.ppm"]
    assert micro_r["riemann.two_shock"]["speedup"] >= 1.1, \
        micro_r["riemann.two_shock"]
    assert results["end_to_end"]["fingerprints_match"]


if __name__ == "__main__":
    raise SystemExit(main())
