"""Figure 3: zoom into the star-forming region.

"In these frames we show a zoom into the star forming region.  Each panel
shows a slice of the logarithm of the gas density magnified by a factor of
ten relative to the previous frame."

The bench produces the zoom stack over the collapsed object, prints each
frame as an ASCII log-density map with its dynamic range, and verifies the
zoom invariants: every frame still contains the density peak, and the
density floor of the frame rises as the view tightens onto the collapsing
core (the defining feature of the paper's movie).
"""

import numpy as np

from repro.analysis import find_densest_point, zoom_stack
from repro.analysis.projections import ascii_render


def test_fig3_zoom_stack(benchmark, sphere_run):
    sc = benchmark.pedantic(lambda: sphere_run, rounds=1, iterations=1)
    h = sc.hierarchy

    centre = find_densest_point(h)
    frames = zoom_stack(h, centre=centre, n_frames=3, zoom_factor=4.0,
                        resolution=24)

    peak = np.log10(sc.peak_density)
    print(f"\nzoom centre: {np.round(centre, 4)}  "
          f"log10 peak density = {peak:.2f}")
    for k, fr in enumerate(frames):
        print(f"\nframe {k}: width = {fr['width']:.4f} box units, "
              f"log10(rho) in [{fr['log10_min']:.2f}, {fr['log10_max']:.2f}]")
        print(ascii_render(fr["image"]))

    maxima = [fr["log10_max"] for fr in frames]
    minima = [fr["log10_min"] for fr in frames]
    # zooming approaches the peak: the frame maximum is non-decreasing
    # (wide frames undersample the tiny peak cell at finite slice
    # resolution, exactly like a rendered image would)
    assert all(b >= a - 0.2 for a, b in zip(maxima, maxima[1:]))
    # the innermost frame resolves the peak cell itself
    assert maxima[-1] > peak - 0.5
    # tighter frames see only the dense core: the floor rises monotonically
    assert all(b >= a - 1e-9 for a, b in zip(minima, minima[1:]))
    # and the dynamic range of the innermost frame is narrow
    assert (maxima[-1] - minima[-1]) < (maxima[0] - minima[0])
    print("\nzoom invariants hold (peak approached, floor rises, range narrows)")
