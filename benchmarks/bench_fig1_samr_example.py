"""Figure 1: the SAMR example — tree structure and composite solution.

The paper's Fig. 1 shows a root grid with two subgrids (half the mesh
spacing) and one sub-subgrid, with the tree on the left and the composite
solution on the right.  This bench constructs exactly that configuration
(in 3-d), prints the tree, and verifies the composite-resolution map.
"""

import numpy as np

from repro.amr import Grid, Hierarchy
from repro.amr.boundary import set_boundary_values


def build_fig1_hierarchy():
    """Root + two level-1 subgrids + one level-2 sub-subgrid (r = 2)."""
    h = Hierarchy(n_root=8)
    a = Grid(1, (2, 2, 6), (6, 6, 4), n_root=8)  # subgrid 1
    b = Grid(1, (8, 8, 4), (6, 6, 6), n_root=8)  # subgrid 2
    h.add_grid(a, h.root)
    h.add_grid(b, h.root)
    c = Grid(2, (20, 20, 12), (6, 6, 6), n_root=8)  # sub-subgrid inside b
    h.add_grid(c, b)
    set_boundary_values(h, 0)
    return h


def print_tree(h):
    lines = ["hierarchy tree (paper Fig. 1, left):"]
    def walk(grid, depth):
        lines.append(
            "  " * depth
            + f"level {grid.level}: start={grid.start_index.tolist()} "
            f"dims={grid.dims.tolist()} dx=1/{round(1 / grid.dx)}"
        )
        for child in grid.children:
            walk(child, depth + 1)
    walk(h.root, 0)
    return "\n".join(lines)


def composite_resolution_map(h):
    """Per-point finest level over a slice (the 'composite solution')."""
    n = 32
    pts = (np.arange(n) + 0.5) / n
    level_map = np.zeros((n, n), dtype=int)
    for i, x in enumerate(pts):
        for j, y in enumerate(pts):
            g = h.finest_grid_at([x, y, 0.55])
            level_map[i, j] = g.level
    return level_map


def test_fig1_samr_example(benchmark):
    h = benchmark.pedantic(build_fig1_hierarchy, rounds=1, iterations=1)

    print("\n" + print_tree(h))
    assert h.n_grids == 4
    assert h.max_level == 2
    assert h.validate_nesting()

    # mesh spacing halves per level (refinement factor 2)
    dxs = [h.root.dx] + [g.dx for g in h.level_grids(1)] + [g.dx for g in h.level_grids(2)]
    assert dxs[1] == dxs[0] / 2 and dxs[-1] == dxs[0] / 4

    level_map = composite_resolution_map(h)
    print("\ncomposite resolution map (finest level per point, z=0.55 slice):")
    for row in level_map[::2]:
        print("".join(str(v) for v in row[::2]))
    # all three resolutions present in the composite
    assert set(np.unique(level_map)) == {0, 1, 2}

    # resolution (SDR) at level l is n * r^l, paper Sec. 3.1
    assert h.spatial_dynamic_range() == 8 * 2**2
    print(f"\nSDR = n * r^l = {h.spatial_dynamic_range():.0f} "
          f"(paper: resolution at level l is n r^l)")
