"""The physics that makes primordial star formation possible.

Walks through the paper's Sec. 2 argument quantitatively:

1. the primordial cooling curve — without H2 there is *no* cooling below
   ~1e4 K; with a trace of H2 there is;
2. the Rees-Ostriker criterion — the paper's halo can only collapse once
   H2 brings t_cool below t_ff;
3. the top-hat model — when a 3-sigma peak of the paper's mass collapses
   and what virial temperature it reaches (below the atomic threshold,
   hence the H2 story);
4. the Press-Schechter abundance of such haloes.

Run:  python examples/cooling_and_collapse_physics.py
"""

import numpy as np

from repro import constants as const
from repro.chemistry import SPECIES, primordial_initial_fractions
from repro.chemistry.equilibrium import cooling_curve
from repro.chemistry.species import SPECIES_NAMES
from repro.chemistry.thermal import cooling_vs_freefall
from repro.cosmology import PowerSpectrum, STANDARD_CDM
from repro.cosmology.mass_function import PressSchechter
from repro.cosmology.tophat import peak_collapse_redshift, virial_temperature


def main():
    print("=== 1. the primordial cooling curve ===")
    print(f"{'T [K]':>9} {'Lambda/n^2 (no H2)':>20} {'with f_H2 = 1e-3':>18}")
    for t in (300, 1000, 3000, 8000, 15000, 30000, 1e5, 1e6):
        lam0 = cooling_curve(np.array([float(t)]), n_h=100.0)[0]
        lam1 = cooling_curve(np.array([float(t)]), n_h=100.0, f_h2=1e-3)[0]
        print(f"{t:9.0f} {lam0:20.3e} {lam1:18.3e}")
    print("-> below ~1e4 K atomic cooling vanishes; H2 opens the channel.\n")

    print("=== 2. the Rees-Ostriker criterion (t_cool / t_ff) ===")
    rho = 100 * const.HYDROGEN_MASS / const.HYDROGEN_MASS_FRACTION
    for f_h2 in (1e-9, 1e-5, 1e-4, 1e-3):
        fr = primordial_initial_fractions(x_e=1e-4, f_h2=f_h2)
        n = {s: np.atleast_1d(fr[s] * rho / (SPECIES[s].mass_amu * const.HYDROGEN_MASS))
             for s in SPECIES_NAMES}
        ratio = cooling_vs_freefall(n, np.atleast_1d(1000.0), rho, 20.0).item()
        verdict = "collapses" if ratio < 1 else "pressure-supported"
        print(f"  f_H2 = {f_h2:7.1e}:  t_cool/t_ff = {ratio:10.2f}  ({verdict})")
    print()

    print("=== 3. top-hat timing of the paper's halo ===")
    power = PowerSpectrum(STANDARD_CDM)
    sigma = power.sigma_mass(5.4e5, z=100.0)
    z_c = peak_collapse_redshift(sigma=sigma, nu=3.0, z_of_sigma=100.0)
    t_vir = virial_temperature(5.4e5, max(z_c, 0.0))
    print(f"  sigma(5.4e5 Msun, z=100) = {sigma:.3f}")
    print(f"  3-sigma peak collapses at z ~ {z_c:.1f} "
          f"(paper's halo: z ~ 19-20)")
    print(f"  virial temperature       ~ {t_vir:.0f} K "
          f"(below the ~8000 K atomic-cooling threshold -> H2 required)\n")

    print("=== 4. Press-Schechter abundance ===")
    ps = PressSchechter(power)
    for z in (30, 20, 15):
        frac = ps.collapsed_fraction(5e5, z)
        print(f"  z = {z:4.1f}: collapsed mass fraction above 5e5 Msun = {frac:.2e}")
    print("\n-> rare at z=30, common by z=15: the first stars form in the")
    print("   earliest of these haloes — the object the paper simulates.")


if __name__ == "__main__":
    main()
