"""Quickstart: a self-gravitating blob collapsing under AMR.

Demonstrates the public API end to end in ~30 seconds: configure a
simulation, set initial conditions, let the hierarchy refine itself, and
inspect the result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Simulation, SimulationConfig
from repro.analysis import composite_slice, find_densest_point, radial_profiles
from repro.analysis.projections import ascii_render


def main():
    config = SimulationConfig(
        n_root=16,
        max_level=2,
        solver="ppm",
        self_gravity=True,
        g_code=2.0,
        refine_overdensity=8.0,
        cfl=0.3,
    )
    sim = Simulation(config)

    # a cold overdense blob, slightly off-centre so nothing is symmetric
    def blob(x, y, z):
        r2 = (x - 0.55) ** 2 + (y - 0.5) ** 2 + (z - 0.45) ** 2
        return 1.0 + 12.0 * np.exp(-r2 / 0.004)

    sim.set_density(blob)
    sim.set_field("internal", lambda x, y, z: np.full_like(x, 0.02))
    sim.initialize()
    print(f"initial hierarchy: {sim.hierarchy.grids_per_level()} grids/level")

    sim.run(t_end=0.15)
    summary = sim.summary()
    print(f"\nfinal time        : {summary['time']:.3f}")
    print(f"max level         : {summary['max_level']}")
    print(f"grids             : {summary['n_grids']}")
    print(f"spatial dyn. range: {summary['sdr']:.0f}")

    centre = find_densest_point(sim.hierarchy)
    print(f"densest point     : {np.round(centre, 3)}")

    prof = radial_profiles(sim.hierarchy, nbins=10, rmax=0.3)
    print("\nradius     density")
    for r, rho in zip(prof["radius"], prof["density"]):
        if np.isfinite(rho):
            print(f"{r:8.4f}  {rho:9.3f}")

    print("\ncomposite density slice (log scale):")
    img = composite_slice(sim.hierarchy, resolution=32,
                          coord=float(centre[2]))
    print(ascii_render(img))

    print("\ncomponent time fractions:")
    for name, frac in sorted(summary["component_fractions"].items(),
                             key=lambda kv: -kv[1]):
        print(f"  {name:<18s} {100 * frac:5.1f} %")


if __name__ == "__main__":
    main()
