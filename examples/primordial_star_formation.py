"""The paper's headline calculation at laptop scale.

Follows the paper's Sec. 4 procedure end to end:

1. a low-resolution survey run locates where the first object forms;
2. the main run starts from the same realisation with full physics —
   dark matter, 12-species chemistry, radiative cooling, self-gravity,
   Jeans + mass refinement — and follows the collapse;
3. the analysis produces Fig. 4-style radial profiles and a Fig. 3-style
   zoom into the forming object.

The configuration below is deliberately small (8^3 root grid, shallow
level cap, boosted fluctuation amplitude) so the script finishes in a few
minutes; raise n_root / max_level / z_end for a longer, deeper run.

Run:  python examples/primordial_star_formation.py
"""

import numpy as np

from repro.analysis import zoom_stack
from repro.analysis.projections import ascii_render
from repro.perf import ComponentTimers
from repro.problems import PrimordialCollapse
from repro.problems.collapse import find_collapse_site


def main():
    print("=== step 1: low-resolution survey (where will the star form?) ===")
    site = find_collapse_site(n_root=8, z_survey=55.0, seed=7, amplitude_boost=4.0)
    print(f"collapse site: {np.round(site, 3)} (box units)\n")

    print("=== step 2: full-physics collapse run ===")
    timers = ComponentTimers()
    run = PrimordialCollapse(
        n_root=8,
        max_level=2,
        z_init=100.0,
        seed=7,
        amplitude_boost=4.0,
        jeans_number=4.0,
        mass_refine_factor=8.0,
        with_chemistry=True,
        with_dark_matter=True,
        timers=timers,
    )
    run.initial_rebuild()
    for z_stop in (75.0, 65.0, 56.0):
        out = run.run_to_redshift(z_stop, max_root_steps=400)
        run.snapshot(label=f"z={out['redshift']:.1f}")
        print(
            f"z={out['redshift']:6.1f}  peak n={out['peak_n_cgs']:9.2e} cm^-3  "
            f"levels={out['max_level']}  grids={out['n_grids']}  SDR={out['sdr']:.0f}"
        )

    print("\n=== step 3: radial profiles about the densest point (Fig. 4) ===")
    prof = run.snapshots[-1]["profiles"]
    print(f"{'r [pc]':>10} {'n [cm^-3]':>12} {'T [K]':>8} {'v_r [km/s]':>11} {'f_H2':>10}")
    for i in range(len(prof["radius"])):
        if np.isfinite(prof["number_density"][i]):
            print(
                f"{prof['radius_pc'][i]:10.2f} {prof['number_density'][i]:12.3e} "
                f"{prof['temperature'][i]:8.1f} {prof['radial_velocity_kms'][i]:11.3f} "
                f"{prof.get('f_H2', np.full_like(prof['radius'], np.nan))[i]:10.2e}"
            )

    print("\n=== zoom into the forming object (Fig. 3) ===")
    frames = zoom_stack(run.hierarchy, n_frames=2, zoom_factor=4.0, resolution=24)
    for k, fr in enumerate(frames):
        print(f"\nframe {k}: width = {fr['width']:.3f} box, "
              f"log10(rho) in [{fr['log10_min']:.2f}, {fr['log10_max']:.2f}]")
        print(ascii_render(fr["image"]))

    print("\n=== component usage (paper Sec. 5 table) ===")
    print(timers.report())


if __name__ == "__main__":
    main()
