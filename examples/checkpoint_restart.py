"""Checkpoint/restart workflow: run, dump, restore, continue, verify.

The hero run's outputs were multi-GB dumps; analysis, visualisation and
restarts all flowed through them.  This example runs a collapse, saves a
checkpoint mid-flight, restores it in a fresh hierarchy, continues both to
the same final time and verifies the restart is faithful.  A second demo
puts the same machinery under the fault-tolerant run-control layer
(`repro.runtime`): rotated atomic checkpoints, a watchdog that rolls a
NaN-poisoned run back to the last good dump, and a JSONL telemetry stream
(see docs/RUNTIME.md).

Run:  python examples/checkpoint_restart.py
"""

import os
import tempfile

import numpy as np

from repro.amr import HierarchyEvolver
from repro.amr.gravity import HierarchyGravity
from repro.hydro import PPMSolver
from repro.io import checkpoint_info, load_hierarchy, save_hierarchy
from repro.problems import SphereCollapse


def main():
    print("running a sphere collapse to mid-flight...")
    sc = SphereCollapse(n_root=8, max_level=2, overdensity=20.0)
    t_mid = 0.8 * sc.free_fall_time()
    t_end = 1.1 * sc.free_fall_time()
    sc.run(t_end=t_mid, max_root_steps=60)
    print(f"  t = {float(sc.hierarchy.root.time):.4f}, "
          f"peak density = {sc.peak_density:.1f}, "
          f"{sc.hierarchy.n_grids} grids")

    path = os.path.join(tempfile.gettempdir(), "repro_demo_checkpoint.npz")
    save_hierarchy(sc.hierarchy, path)
    size_mb = os.path.getsize(path) / 1e6
    print(f"\ncheckpoint written: {path} ({size_mb:.1f} MB)")
    print("checkpoint_info:", checkpoint_info(path))

    print("\ncontinuing the original run...")
    sc.run(t_end=t_end, max_root_steps=60)
    peak_original = sc.peak_density

    print("restoring the checkpoint into a fresh hierarchy...")
    h2 = load_hierarchy(path)
    grav = HierarchyGravity(g_code=sc.g_code, mean_density=sc.mean_density)
    ev2 = HierarchyEvolver(h2, PPMSolver(), gravity=grav,
                           criteria=sc.criteria, cfl=0.3,
                           max_level=sc.max_level, jeans_floor_cells=4.0)
    ev2.advance_to(t_end)
    peak_restarted = max(g.field_view("density").max() for g in h2.all_grids())

    print(f"\npeak density, uninterrupted run : {peak_original:.2f}")
    print(f"peak density, restarted run     : {peak_restarted:.2f}")
    rel = abs(peak_restarted - peak_original) / peak_original
    print(f"relative difference             : {rel:.2e}")
    if rel < 0.05:
        print("restart is faithful.")
    os.remove(path)


def run_control_demo():
    """The fault-tolerant loop: checkpoints, NaN rollback, telemetry."""
    import shutil

    from repro import Simulation, SimulationConfig
    from repro.runtime import CheckpointPolicy, read_events, telemetry_path

    print("\n--- run control: watchdog recovery + telemetry ---")
    run_dir = os.path.join(tempfile.gettempdir(), "repro_demo_run")
    shutil.rmtree(run_dir, ignore_errors=True)

    sim = Simulation(SimulationConfig(n_root=8, self_gravity=True,
                                      max_level=1, refine_overdensity=3.0,
                                      g_code=2.0, cfl=0.3))
    sim.set_density(lambda x, y, z: 1 + 10 * np.exp(
        -((x - .5) ** 2 + (y - .5) ** 2 + (z - .5) ** 2) / 0.01))
    sim.set_field("internal", lambda x, y, z: np.full_like(x, 0.05))
    sim.initialize()

    poisoned = []

    def cosmic_ray(controller):
        """Flip a cell to NaN mid-run, once — the watchdog catches it."""
        if controller.step == 3 and not poisoned:
            poisoned.append(True)
            controller.hierarchy.root.fields["density"][5, 5, 5] = np.nan

    controller = sim.make_controller(
        run_dir, pre_step=cosmic_ray,
        policy=CheckpointPolicy(every_steps=2, keep=3))
    out = controller.run(t_end=0.8, max_root_steps=6)
    print(f"status = {out['status']}, steps = {out['steps']}, "
          f"recoveries = {out['recoveries']}, cfl now {sim.evolver.cfl}")
    for event in read_events(telemetry_path(run_dir)):
        if event["event"] in ("recovery", "checkpoint", "finish"):
            print(f"  telemetry: {event}")
    shutil.rmtree(run_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
    run_control_demo()
