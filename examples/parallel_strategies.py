"""The paper's parallelisation strategies on the virtual cluster.

Builds a realistic AMR hierarchy, distributes its grids over simulated
ranks, and measures what each of the Sec. 3.4 optimisations buys:
sterile objects (no probes), pipelined sends (less waiting), and work-aware
load balancing.

Run:  python examples/parallel_strategies.py
"""

import numpy as np

from repro.parallel import (
    SterileHierarchy,
    balance_grids,
    load_imbalance,
    simulate_level_update,
)
from repro.problems import SphereCollapse


def main():
    print("building an AMR hierarchy (sphere collapse, 3 levels)...")
    sc = SphereCollapse(n_root=16, max_level=2, overdensity=25.0, max_dims=8)
    sc.run(max_root_steps=10)
    h = sc.hierarchy
    print(f"hierarchy: {h.grids_per_level()} grids/level\n")

    sh = SterileHierarchy.from_hierarchy(h)
    steriles = [s for lvl in sh.by_level.values() for s in lvl]
    n_ranks = 8

    print(f"--- load balancing over {n_ranks} ranks ---")
    for strategy in ("round_robin", "level_blocks", "greedy"):
        assignment = balance_grids(steriles, n_ranks, strategy)
        imb = load_imbalance(steriles, assignment, n_ranks)
        print(f"  {strategy:<14s} imbalance = {imb:.3f}  "
              f"(parallel efficiency {100 / imb:.0f} %)")

    assignment = balance_grids(steriles, n_ranks, "greedy")
    level = min(1, h.max_level)

    print(f"\n--- one level-{level} update under the strategy matrix ---")
    print(f"{'sterile':>8} {'pipeline':>9} {'probes':>7} {'wait [ms]':>10} "
          f"{'makespan [ms]':>14}")
    for sterile in (False, True):
        for pipe in (False, True):
            r = simulate_level_update(
                sh, assignment, n_ranks, level=level,
                use_sterile=sterile, use_pipeline=pipe,
            )
            print(f"{str(sterile):>8} {str(pipe):>9} {r['probes']:7d} "
                  f"{1e3 * r['wait_time']:10.2f} {1e3 * r['makespan']:14.3f}")

    print("\nthe paper's configuration (sterile + pipelined) minimises both "
          "probes and wait time.")


if __name__ == "__main__":
    main()
