"""Solver validation: the Sod shock tube with both of the paper's schemes.

"We have implemented two [solvers] ... This allows us a double check on any
result." — runs PPM and the ZEUS-like solver against the exact Riemann
solution and prints the comparison.

Run:  python examples/shock_tube_validation.py
"""

import numpy as np

from repro.hydro import ZeusSolver
from repro.problems import SodShockTube


def run_one(label, solver=None, n=128):
    sod = SodShockTube(n=n)
    prof = sod.run(0.2, solver=solver)
    err = sod.l1_error()
    print(f"{label:<18s} L1(density) = {err:.4f}   steps = {sod.steps}")
    return prof


def main():
    print("Sod shock tube, t = 0.2, 128 cells\n")
    ppm = run_one("PPM / HLLC")
    zeus = run_one("ZEUS-like", solver=ZeusSolver(gamma=1.4))

    print("\nresolution study (PPM):")
    for n in (32, 64, 128, 256):
        sod = SodShockTube(n=n)
        sod.run(0.2)
        print(f"  n = {n:4d}   L1 = {sod.l1_error():.4f}")

    print("\nprofile at selected points (x, exact rho, PPM rho, ZEUS rho):")
    x = ppm["x"]
    for xq in (0.3, 0.5, 0.7, 0.75, 0.87):
        i = np.argmin(np.abs(x - xq))
        print(
            f"  x={x[i]:.3f}  exact={ppm['density_exact'][i]:.4f}  "
            f"ppm={ppm['density'][i]:.4f}  zeus={zeus['density'][i]:.4f}"
        )

    d = np.abs(ppm["density"] - zeus["density"]).mean()
    print(f"\nmean |PPM - ZEUS| = {d:.4f} (the paper's double check)")


if __name__ == "__main__":
    main()
