"""Cosmological validation: the Zel'dovich pancake.

Evolves a plane-wave perturbation in an Einstein-de Sitter background and
compares against the exact Zel'dovich solution — exercising the comoving
source terms, self-gravity and the expansion clock together.

Run:  python examples/zeldovich_pancake.py
"""

import numpy as np

from repro.problems import ZeldovichPancake


def main():
    zp = ZeldovichPancake(n=32, z_init=30.0, z_caustic=5.0)
    print(f"pancake: z_init = {zp.z_init}, caustic at z = {zp.z_caustic}")
    print(f"box: {zp.units.length_unit / 3.0857e21:.0f} comoving kpc\n")

    for z_end in (20.0, 12.0):
        out = zp.run(z_end=z_end)
        err_rho = np.abs(out["density"] - out["density_exact"]) / out["density_exact"]
        vscale = np.abs(out["velocity_exact"]).max()
        err_v = np.abs(out["velocity"] - out["velocity_exact"]).max() / vscale
        print(f"z = {z_end:5.1f}:  max rel density error = {err_rho.max():.4f}, "
              f"velocity error = {err_v:.4f}")
        print(f"          density contrast: {out['density'].min():.3f} .. "
              f"{out['density'].max():.3f} "
              f"(exact {out['density_exact'].min():.3f} .. "
              f"{out['density_exact'].max():.3f})")

    out = zp.profiles(1.0 / (1.0 + 12.0))
    print("\nx, density, exact density, velocity, exact velocity:")
    for i in range(0, zp.n, 4):
        print(f"  {out['x'][i]:.3f}  {out['density'][i]:7.4f}  "
              f"{out['density_exact'][i]:7.4f}  {out['velocity'][i]:9.5f}  "
              f"{out['velocity_exact'][i]:9.5f}")


if __name__ == "__main__":
    main()
