"""Legacy setup shim: enables `pip install -e .` on environments without wheel."""

from setuptools import setup

setup()
