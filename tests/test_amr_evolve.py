"""Integration tests: rebuild, hierarchy gravity, and the EvolveLevel W-cycle."""

import numpy as np
import pytest

from repro.amr import Grid, Hierarchy, HierarchyEvolver, RefinementCriteria
from repro.amr.boundary import set_boundary_values
from repro.amr.gravity import HierarchyGravity
from repro.amr.rebuild import rebuild_hierarchy
from repro.hydro import PPMSolver, ZeusSolver
from repro.nbody.particles import ParticleSet
from repro.perf import ComponentTimers, HierarchyStats
from repro.precision.position import PositionDD


def _blob_hierarchy(n_root=8, amplitude=10.0):
    h = Hierarchy(n_root=n_root)
    root = h.root
    centres = [(np.arange(n_root) + 0.5) / n_root] * 3
    x, y, z = np.meshgrid(*centres, indexing="ij")
    r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2
    root.fields["density"][root.interior] = 1.0 + amplitude * np.exp(-r2 / 0.01)
    set_boundary_values(h, 0)
    return h


class TestRebuild:
    def test_creates_nested_grids(self):
        h = _blob_hierarchy()
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=2)
        rebuild_hierarchy(h, 1, crit)
        assert h.max_level >= 1
        assert h.validate_nesting()

    def test_refined_region_covers_blob(self):
        h = _blob_hierarchy()
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=1)
        rebuild_hierarchy(h, 1, crit)
        centre_grid = h.finest_grid_at([0.5, 0.5, 0.5])
        assert centre_grid.level == 1

    def test_data_copied_from_parent(self):
        h = _blob_hierarchy()
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=1)
        rebuild_hierarchy(h, 1, crit)
        g = h.finest_grid_at([0.5, 0.5, 0.5])
        # fine centre value should be near the coarse peak (~4.1 when the
        # blob straddles the 8^3 cell corners)
        assert g.field_view("density").max() > 3.5

    def test_rebuild_preserves_old_fine_data(self):
        h = _blob_hierarchy()
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=1)
        rebuild_hierarchy(h, 1, crit)
        g = h.finest_grid_at([0.5, 0.5, 0.5])
        marker = 123.456
        g.fields["density"][g.interior] = marker
        # perturb the root so the flagged set changes: the rebuild must then
        # re-cluster (no reuse) and copy the old fine data forward
        ri = h.root.interior
        h.root.fields["density"][ri][0, 0, 0] = 50.0
        set_boundary_values(h, 0)
        rebuild_hierarchy(h, 1, crit)
        g2 = h.finest_grid_at([0.5, 0.5, 0.5])
        assert g2 is not g  # new object ("old grids are then deleted")
        assert np.any(g2.field_view("density") == marker)

    def test_rebuild_unchanged_flags_reuses_grids(self):
        h = _blob_hierarchy()
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=1)
        rebuild_hierarchy(h, 1, crit)
        g = h.finest_grid_at([0.5, 0.5, 0.5])
        marker = 123.456
        g.fields["density"][g.interior] = marker
        rebuild_hierarchy(h, 1, crit)
        g2 = h.finest_grid_at([0.5, 0.5, 0.5])
        assert g2 is g  # unchanged flags: incremental rebuild keeps the grid
        assert np.any(g2.field_view("density") == marker)
        assert h.last_rebuild_stats["reused"] > 0
        assert h.last_rebuild_stats["created"] == 0

    def test_derefinement(self):
        h = _blob_hierarchy()
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=1)
        rebuild_hierarchy(h, 1, crit)
        assert h.max_level == 1
        # flatten the density: flags disappear, grids must go away
        h.root.fields["density"][:] = 1.0
        rebuild_hierarchy(h, 1, crit)
        assert h.max_level == 0

    def test_mass_conserved_through_rebuild(self):
        h = _blob_hierarchy()
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=1)
        m0 = h.root.field_view("density").sum() * h.root.dx**3
        rebuild_hierarchy(h, 1, crit)
        # composite mass (uncovered root + children)
        covered = h.covering_mask(h.root)
        m1 = (h.root.field_view("density") * ~covered).sum() * h.root.dx**3
        for g in h.level_grids(1):
            m1 += g.field_view("density").sum() * g.dx**3
        assert np.isclose(m0, m1, rtol=1e-12)

    def test_max_dims_split(self):
        h = _blob_hierarchy(n_root=16, amplitude=10.0)
        # broad blob -> big flagged region; max_dims forces multiple grids
        h.root.fields["density"][h.root.interior] = 10.0
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=1)
        rebuild_hierarchy(h, 1, crit, max_dims=8)
        assert all(np.all(g.dims <= 16) for g in h.level_grids(1))
        assert len(h.level_grids(1)) > 1

    def test_root_rebuild_rejected(self):
        h = _blob_hierarchy()
        with pytest.raises(ValueError):
            rebuild_hierarchy(h, 0, RefinementCriteria())


class TestHierarchyGravity:
    def test_root_potential_tracks_overdensity(self):
        h = _blob_hierarchy()
        grav = HierarchyGravity(g_code=1.0)
        grav.solve_level(h, 0)
        phi = h.root.phi[h.root.interior]
        rho = h.root.field_view("density")
        # the potential minimum coincides with the density peak
        assert np.argmin(phi) == np.argmax(rho)

    def test_subgrid_potential_matches_root(self):
        """The multigrid subgrid solve must agree with the root FFT solution
        in the refined region (same source, boundary from the root)."""
        h = _blob_hierarchy(n_root=16)
        grav = HierarchyGravity(g_code=1.0, mean_density=float(
            h.root.field_view("density").mean()))
        grav.solve_level(h, 0)
        crit = RefinementCriteria(overdensity_threshold=2.0, max_level=1)
        rebuild_hierarchy(h, 1, crit)
        assert h.max_level == 1
        grav.solve_level(h, 1)
        g = h.finest_grid_at([0.5, 0.5, 0.5])
        # compare child phi (block-averaged) against root phi in the region
        from repro.amr.projection import block_average

        child_phi = block_average(g.phi[g.interior], 2)
        lo, hi = g.parent_index_region()
        ng = h.root.nghost
        root_phi = h.root.phi[
            ng + lo[0] : ng + hi[0], ng + lo[1] : ng + hi[1], ng + lo[2] : ng + hi[2]
        ]
        scale = np.abs(h.root.phi[h.root.interior]).max()
        assert np.abs(child_phi - root_phi).max() < 0.12 * scale

    def test_acceleration_points_inward(self):
        h = _blob_hierarchy()
        grav = HierarchyGravity(g_code=1.0)
        grav.solve_level(h, 0)
        acc = grav.acceleration(h.root)
        ng = h.root.nghost
        # on the +x side of the blob, g_x must be negative (pull back in)
        assert acc[0][ng + 6, ng + 4, ng + 4] < 0
        assert acc[0][ng + 2, ng + 4, ng + 4] > 0

    def test_particle_deposit_included(self):
        h = Hierarchy(n_root=8)
        h.particles = ParticleSet(
            PositionDD(np.array([[0.5, 0.5, 0.5]])), np.zeros((1, 3)), np.array([5.0])
        )
        grav = HierarchyGravity(g_code=1.0, mean_density=5.0 + 1.0)
        rho = grav.total_density(h, h.root)
        assert rho.max() > h.root.field_view("density").max()


class TestEvolveLevel:
    def test_wcycle_subgrid_steps(self):
        """Subgrids take more, smaller steps and end at the parent time."""
        h = _blob_hierarchy()
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=1)
        rebuild_hierarchy(h, 1, crit)
        ev = HierarchyEvolver(h, PPMSolver(), criteria=None, cfl=0.3)
        ev.advance_to(0.02)
        assert float(h.root.time) == pytest.approx(0.02)
        for g in h.level_grids(1):
            assert float(g.time) == pytest.approx(0.02)
        # W-cycle: level 1 took at least as many steps as level 0
        assert ev.step_counter[1] >= ev.step_counter[0]

    def test_composite_mass_conserved(self):
        h = _blob_hierarchy()
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=1)
        rebuild_hierarchy(h, 1, crit)

        def composite_mass():
            covered = h.covering_mask(h.root)
            m = (h.root.field_view("density") * ~covered).sum() * h.root.dx**3
            for g in h.level_grids(1):
                m += g.field_view("density").sum() * g.dx**3
            return m

        m0 = composite_mass()
        ev = HierarchyEvolver(h, PPMSolver(), criteria=None, cfl=0.3)
        ev.advance_to(0.02)
        m1 = composite_mass()
        assert abs(m1 - m0) < 1e-8 * m0

    def test_amr_matches_unigrid_on_smooth_flow(self):
        """A refined patch over smooth flow must not distort the solution:
        compare the AMR composite against a pure unigrid run."""
        def make(n_root):
            h = Hierarchy(n_root=n_root)
            root = h.root
            c = [(np.arange(n_root) + 0.5) / n_root] * 3
            x, y, z = np.meshgrid(*c, indexing="ij")
            root.fields["density"][root.interior] = 1.0 + 0.2 * np.sin(2 * np.pi * x)
            root.fields["vx"][root.interior] = 0.5
            root.fields["energy"][root.interior] = (
                root.fields["internal"][root.interior]
                + 0.5 * root.fields["vx"][root.interior] ** 2
            )
            set_boundary_values(h, 0)
            return h

        t_end = 0.05
        h_uni = make(8)
        ev_uni = HierarchyEvolver(h_uni, PPMSolver(), cfl=0.3)
        ev_uni.advance_to(t_end)

        h_amr = make(8)
        child = Grid(1, (4, 4, 4), (8, 8, 8), n_root=8)
        h_amr.add_grid(child, h_amr.root)
        from repro.amr.rebuild import _fill_new_grid

        _fill_new_grid(child, h_amr.root, [])
        ev_amr = HierarchyEvolver(h_amr, PPMSolver(), cfl=0.3)
        ev_amr.advance_to(t_end)

        rho_uni = h_uni.root.field_view("density")
        rho_amr = h_amr.root.field_view("density")  # projection folded child in
        assert np.abs(rho_amr - rho_uni).max() < 0.02

    def test_dynamic_refinement_follows_feature(self):
        h = _blob_hierarchy(amplitude=20.0)
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=2)
        rebuild_hierarchy(h, 1, crit)
        stats = HierarchyStats()
        ev = HierarchyEvolver(h, PPMSolver(), criteria=crit, cfl=0.3,
                              max_level=2, stats=stats)
        ev.advance_to(0.01)
        assert h.max_level >= 1
        assert len(stats.times) > 0
        assert stats.n_grids[-1] >= 1

    def test_zeus_solver_also_runs(self):
        h = _blob_hierarchy()
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=1)
        rebuild_hierarchy(h, 1, crit)
        ev = HierarchyEvolver(h, ZeusSolver(), criteria=None, cfl=0.2)
        ev.advance_to(0.005)
        for g in h.all_grids():
            assert np.all(np.isfinite(g.field_view("density")))
            assert np.all(g.field_view("density") > 0)

    def test_timers_populate(self):
        h = _blob_hierarchy()
        timers = ComponentTimers()
        grav = HierarchyGravity(g_code=0.1, mean_density=float(
            h.root.field_view("density").mean()))
        ev = HierarchyEvolver(h, PPMSolver(), gravity=grav, cfl=0.3, timers=timers)
        ev.advance_to(0.005)
        fr = timers.fractions()
        assert fr.get("hydro", 0) > 0
        assert fr.get("gravity", 0) > 0
        assert abs(sum(fr.values()) - 1.0) < 1e-6

    def test_particles_advance_with_hierarchy(self):
        h = _blob_hierarchy()
        h.particles = ParticleSet(
            PositionDD(np.array([[0.3, 0.5, 0.5]])),
            np.array([[0.5, 0.0, 0.0]]),
            np.array([1e-30]),  # massless tracer
        )
        grav = HierarchyGravity(g_code=1e-30, mean_density=1.0)
        ev = HierarchyEvolver(h, PPMSolver(), gravity=grav, cfl=0.3)
        ev.advance_to(0.02)
        # tracer drifted by ~v*t
        assert abs(h.particles.positions.hi[0, 0] - 0.31) < 2e-3

    def test_gravity_collapse_increases_density(self):
        """Self-gravity on: a cold overdense blob contracts (density grows)."""
        h = _blob_hierarchy(amplitude=5.0)
        h.root.fields["internal"][:] = 0.01  # cold: gravity beats pressure
        h.root.fields["energy"][:] = 0.01
        mean = float(h.root.field_view("density").mean())
        grav = HierarchyGravity(g_code=2.0, mean_density=mean)
        rho_max0 = h.root.field_view("density").max()
        ev = HierarchyEvolver(h, PPMSolver(), gravity=grav, cfl=0.3)
        ev.advance_to(0.15)
        assert h.root.field_view("density").max() > 1.05 * rho_max0
