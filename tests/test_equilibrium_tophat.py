"""Tests for CIE equilibrium / cooling curve and the top-hat model."""

import numpy as np
import pytest

from repro.chemistry.equilibrium import (
    cie_fractions,
    cooling_curve,
    equilibrium_number_densities,
)
from repro.cosmology.tophat import (
    DELTA_COLLAPSE,
    VIRIAL_OVERDENSITY,
    collapse_redshift,
    cycloid_radius,
    cycloid_time,
    linear_overdensity,
    nonlinear_overdensity,
    peak_collapse_redshift,
    virial_temperature,
)


class TestCIE:
    def test_neutral_cold(self):
        fr = cie_fractions(5e3)
        assert fr["x_HI"] > 0.999
        assert fr["x_HeI"] > 0.999

    def test_ionised_hot(self):
        fr = cie_fractions(1e6)
        assert fr["x_HII"] > 0.99
        assert fr["x_HeIII"] > 0.9

    def test_half_ionisation_near_15000K(self):
        """CIE hydrogen is ~50 % ionised around 1.5e4 K."""
        T = np.logspace(4, 4.5, 60)
        fr = cie_fractions(T)
        i = np.argmin(np.abs(fr["x_HII"] - 0.5))
        assert 1.2e4 < T[i] < 2.2e4

    def test_fractions_sum_to_one(self):
        T = np.logspace(3.5, 7, 20)
        fr = cie_fractions(T)
        np.testing.assert_allclose(fr["x_HI"] + fr["x_HII"], 1.0)
        np.testing.assert_allclose(
            fr["x_HeI"] + fr["x_HeII"] + fr["x_HeIII"], 1.0
        )

    def test_equilibrium_densities_charge(self):
        n = equilibrium_number_densities(1.0, np.array([3e4]))
        from repro.chemistry.species import electron_density

        np.testing.assert_allclose(n["de"], electron_density(n), rtol=1e-10)


class TestCoolingCurve:
    def test_lyalpha_peak(self):
        """The primordial curve peaks near 2e4 K at ~1e-22..1e-23 erg cm^3/s."""
        T = np.logspace(4.0, 7.0, 120)
        lam = cooling_curve(T, n_h=1.0)
        i = np.argmax(lam)
        assert 1.2e4 < T[i] < 4e4
        assert 1e-24 < lam[i] < 1e-21

    def test_he_shoulder(self):
        """A second feature (He+ excitation) appears near 1e5 K: the curve
        must not fall monotonically from the H peak through 1e5."""
        T = np.logspace(4.3, 5.6, 80)
        lam = cooling_curve(T)
        d = np.diff(np.log(lam))
        assert d.max() > 0  # rises again somewhere in the He regime

    def test_bremsstrahlung_tail(self):
        """At T >> 1e6 K the curve scales as sqrt(T)."""
        l1 = cooling_curve(np.array([1e7]))[0]
        l2 = cooling_curve(np.array([4e7]))[0]
        assert l2 / l1 == pytest.approx(2.0, rel=0.3)

    def test_h2_extends_below_1e4(self):
        """The paper's enabling physics: with H2, cooling exists < 1e4 K."""
        T = np.array([800.0])
        without = cooling_curve(T, n_h=100.0, f_h2=0.0, z=30.0)[0]
        with_h2 = cooling_curve(T, n_h=100.0, f_h2=1e-3, z=30.0)[0]
        assert with_h2 > 10 * max(without, 1e-40)


class TestTopHat:
    def test_delta_collapse_value(self):
        assert DELTA_COLLAPSE == pytest.approx(1.686, abs=0.01)

    def test_virial_overdensity(self):
        assert VIRIAL_OVERDENSITY == pytest.approx(177.65, rel=1e-3)

    def test_cycloid_turnaround(self):
        # theta = pi: maximum radius 2 (units r_max/2), delta_nl = 9pi^2/16-1
        assert cycloid_radius(np.pi) == pytest.approx(2.0)
        assert nonlinear_overdensity(np.pi) == pytest.approx(9 * np.pi**2 / 16)

    def test_linear_vs_nonlinear_small_theta(self):
        """Early on the linear and exact overdensities agree."""
        th = 0.1
        assert nonlinear_overdensity(th) - 1.0 == pytest.approx(
            linear_overdensity(th), rel=0.02
        )

    def test_collapse_redshift(self):
        # delta=0.2 at z=100 -> collapses at 1+z_c = 101*0.2/1.686
        zc = collapse_redshift(0.2, 100.0)
        assert zc == pytest.approx(101 * 0.2 / DELTA_COLLAPSE - 1)

    def test_peak_collapse_matches_paper_epoch(self):
        """A ~3-sigma peak with sigma~0.12 at z=100 collapses near z~20,
        the paper's halo-formation epoch."""
        zc = peak_collapse_redshift(sigma=0.12, nu=3.0, z_of_sigma=100.0)
        assert 15 < zc < 30

    def test_virial_temperature_paper_halo(self):
        """The paper's 5.4e5 Msun halo at z=19: T_vir ~ hundreds of K —
        below the atomic cooling threshold, hence H2."""
        t = virial_temperature(5.4e5, 19.0, hubble=0.5, mu=1.22)
        assert 100 < t < 3000
        assert t < 8000  # below atomic-line cooling onset

    def test_cycloid_time_monotone(self):
        th = np.linspace(0.01, 2 * np.pi, 50)
        assert np.all(np.diff(cycloid_time(th)) > 0)
