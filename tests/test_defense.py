"""Chaos matrix for the grid-scoped defense ladder (repro.amr.defense)
and the deterministic fault-injection framework (repro.runtime.faults).

One deterministic fault scenario per ladder rung, plus the contract that
matters most: with no faults and no escalations, a defended run is
bitwise identical to an undefended one on every exec backend.
"""

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.amr.defense import DefenseLadder, validate_fields
from repro.gravity.multigrid import (
    MultigridConvergenceError,
    MultigridSolver,
)
from repro.nbody.particles import ParticleSet
from repro.runtime import faults
from repro.runtime.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFaultError,
    parse_spec,
)
from repro.runtime.recovery import StateCorruptionError
from repro.runtime.telemetry import read_events, summarise, telemetry_path

T_END = 0.8  # far enough that a handful of root steps never reaches it


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    """Every test starts and ends with no process-wide injector."""
    faults.clear()
    yield
    faults.clear()


def build_sim(defense: bool = True, backend: str | None = None,
              workers: int | None = None) -> Simulation:
    """The test_runtime harness: gravity + refinement + particles."""
    sim = Simulation(SimulationConfig(
        n_root=8, self_gravity=True, max_level=1, refine_overdensity=3.0,
        g_code=2.0, cfl=0.3, defense=defense, exec_backend=backend,
        workers=workers,
    ))
    sim.set_density(lambda x, y, z: 1 + 10 * np.exp(
        -((x - .5) ** 2 + (y - .5) ** 2 + (z - .5) ** 2) / 0.01))
    sim.set_field("internal", lambda x, y, z: np.full_like(x, 0.05))
    rng = np.random.default_rng(3)
    sim.hierarchy.particles = ParticleSet.from_arrays(
        rng.random((20, 3)), 0.01 * rng.standard_normal((20, 3)),
        np.full(20, 1e-3))
    sim.initialize()
    return sim


def advance(sim: Simulation, steps: int) -> None:
    for _ in range(steps):
        sim.evolver.advance_root_step(T_END)


def assert_hierarchies_identical(ha, hb):
    assert ha.grids_per_level() == hb.grids_per_level()
    for ga, gb in zip(ha.all_grids(), hb.all_grids()):
        assert float(ga.time.hi) == float(gb.time.hi)
        assert float(ga.time.lo) == float(gb.time.lo)
        for name, arr in ga.fields.array_items():
            np.testing.assert_array_equal(arr, gb.fields[name], err_msg=name)
        np.testing.assert_array_equal(ga.phi, gb.phi)
    np.testing.assert_array_equal(
        ha.particles.positions.hi, hb.particles.positions.hi)
    np.testing.assert_array_equal(
        ha.particles.velocities, hb.particles.velocities)


# ---------------------------------------------------------------- fault specs
class TestFaultSpecs:
    def test_parse_round_trip(self):
        specs = parse_spec(
            "nan_cell:level=1,grid=3,step=2,count=4; mg_diverge:level=1")
        assert len(specs) == 2
        s = specs[0]
        assert (s.kind, s.level, s.grid_id, s.step, s.count) == \
            ("nan_cell", 1, 3, 2, 4)
        assert specs[1].kind == "mg_diverge"
        assert specs[1].grid_id is None

    def test_parse_rejects_unknown_kind_and_key(self):
        with pytest.raises(ValueError):
            parse_spec("frobnicate:level=0")
        with pytest.raises(ValueError):
            parse_spec("nan_cell:bogus=1")
        with pytest.raises(ValueError):
            FaultSpec("nan_cell", count=0)

    def test_take_respects_site_filter_and_budget(self):
        inj = FaultInjector([FaultSpec("mg_diverge", level=1, count=2)])
        assert inj.take("mg_diverge", level=0, grid_id=7) is None
        assert inj.take("mg_diverge", level=1, grid_id=7) is not None
        assert inj.take("mg_diverge", level=1, grid_id=8) is not None
        assert inj.take("mg_diverge", level=1, grid_id=9) is None  # spent
        assert len(inj.fired) == 2

    def test_step_context_matching(self):
        inj = FaultInjector([FaultSpec("nan_cell", level=0, step=3)])
        inj.set_step(0, 2)
        assert inj.take("nan_cell", level=0, grid_id=0) is None
        inj.set_step(0, 3)
        assert inj.take("nan_cell", level=0, grid_id=0) is not None

    def test_nan_plan_is_seed_deterministic(self):
        def plan(seed):
            inj = FaultInjector([FaultSpec("nan_cell")], seed=seed)
            return inj.plan_nan_cell(1, 4, (8, 8, 8), 3)

        a, b = plan(42), plan(42)
        assert a == b  # same seed, same site, same firing -> same cell
        assert a["field"] == "density"
        assert all(3 <= i < 11 for i in a["index"])  # interior, ghost offset

    def test_maybe_raise(self):
        faults.install(FaultInjector([FaultSpec("chem_blowup")]))
        with pytest.raises(InjectedFaultError):
            faults.maybe_raise("chem_blowup", 0, 0)
        faults.maybe_raise("chem_blowup", 0, 0)  # budget spent: no raise


# ----------------------------------------------------------------- validation
class TestValidateFields:
    def test_healthy_grid_reports_nothing(self):
        g = build_sim().hierarchy.root
        assert validate_fields(g.fields, g.interior) == []

    def test_nonfinite_and_nonpositive_labelled(self):
        g = build_sim().hierarchy.root
        g.fields["density"][5, 5, 5] = np.nan
        g.fields["internal"][6, 6, 6] = -1.0
        problems = validate_fields(g.fields, g.interior)
        assert "density:nonfinite=1" in problems
        assert "internal:nonpositive=1" in problems

    def test_ghost_corruption_is_ignored(self):
        g = build_sim().hierarchy.root
        g.fields["density"][0, 0, 0] = np.inf  # ghost cell
        assert validate_fields(g.fields, g.interior) == []


# --------------------------------------------------------- bitwise invariance
class TestNoFaultBitwiseIdentity:
    def test_defense_on_equals_defense_off(self):
        a = build_sim(defense=True)
        b = build_sim(defense=False)
        advance(a, 3)
        advance(b, 3)
        assert a.evolver.defense is not None
        assert b.evolver.defense is None
        assert_hierarchies_identical(a.hierarchy, b.hierarchy)
        assert a.evolver.defense.totals["rungs"] == {}
        assert a.evolver.defense.totals["escalations"] == 0

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_defended_parallel_backends_match_serial(self, backend):
        ref = build_sim(defense=False)
        advance(ref, 2)
        sim = build_sim(defense=True, backend=backend, workers=2)
        advance(sim, 2)
        assert_hierarchies_identical(ref.hierarchy, sim.hierarchy)


# ------------------------------------------------------------- ladder rungs
RUNG_BY_COUNT = {
    1: "retry_half_dt",
    2: "first_order",
    3: "zeus_fallback",
    4: "floor_repair",
}


class TestHydroLadder:
    @pytest.mark.parametrize("count", [1, 2, 3, 4])
    def test_repeated_nan_climbs_one_rung_per_firing(self, count):
        sim = build_sim()
        root_id = sim.hierarchy.root.grid_id  # ids are process-global
        faults.install(FaultInjector([
            FaultSpec("nan_cell", level=0, grid_id=root_id, step=0,
                      count=count),
        ], seed=7))
        advance(sim, 2)
        ladder = sim.evolver.defense
        rescued = RUNG_BY_COUNT[count]
        assert ladder.totals["rungs"].get(rescued) == 1
        # every rung below the rescuing one was attempted and failed
        for lower in list(RUNG_BY_COUNT.values())[:count - 1]:
            assert ladder.totals["rungs"].get(lower) is None
        assert ladder.totals["escalations"] == 0
        assert len(faults.active().fired) == count
        for g in sim.hierarchy.all_grids():
            assert np.all(np.isfinite(g.fields["density"]))

    def test_fifth_firing_escalates_state_corruption(self):
        sim = build_sim()
        root_id = sim.hierarchy.root.grid_id
        faults.install(FaultInjector([
            FaultSpec("nan_cell", level=0, grid_id=root_id, step=0, count=5),
        ], seed=7))
        with pytest.raises(StateCorruptionError) as err:
            advance(sim, 1)
        assert err.value.level == 0 and err.value.grid_id == root_id
        assert list(err.value.rungs) == list(RUNG_BY_COUNT.values())
        assert sim.evolver.defense.totals["escalations"] == 1

    def test_escalation_rolls_back_under_run_control(self, tmp_path):
        from repro.runtime import CheckpointPolicy

        run_dir = str(tmp_path / "chaos")
        sim = build_sim()
        faults.install(FaultInjector([
            FaultSpec("nan_cell", level=0, grid_id=sim.hierarchy.root.grid_id,
                      step=1, count=5),
        ], seed=7))
        out = sim.make_controller(
            run_dir, policy=CheckpointPolicy(every_steps=1, keep=10),
        ).run(T_END, max_root_steps=3)
        assert out["status"] == "max_steps"
        assert out["recoveries"] == 1
        for g in sim.hierarchy.all_grids():
            assert np.all(np.isfinite(g.fields["density"]))
        events = read_events(telemetry_path(run_dir))
        defense = [e for e in events if e["event"] == "defense"]
        assert any(e.get("escalate") for e in defense)
        # the failed rung attempts were also reported, before the rollback
        assert any(e.get("rung") == "zeus_fallback" and not e["ok"]
                   for e in defense)
        assert summarise(run_dir)["defense_events"] >= 5

    def test_rescue_events_reach_telemetry(self, tmp_path):
        run_dir = str(tmp_path / "rescue")
        sim = build_sim()
        faults.install(FaultInjector([
            FaultSpec("nan_cell", level=0, grid_id=sim.hierarchy.root.grid_id,
                      step=1, count=1),
        ], seed=7))
        out = sim.make_controller(run_dir).run(T_END, max_root_steps=3)
        assert out["recoveries"] == 0  # rescued in place, no rollback
        events = read_events(telemetry_path(run_dir))
        rescue = [e for e in events if e["event"] == "defense"]
        assert len(rescue) == 1
        assert rescue[0]["rung"] == "retry_half_dt" and rescue[0]["ok"]
        assert rescue[0]["step"] == 2  # fired during the second root step
        steps = [e for e in events if e["event"] == "step"]
        assert any(
            e.get("defense", {}).get("rungs", {}).get("retry_half_dt") == 1
            for e in steps
        )


# ------------------------------------------------------------------ multigrid
class TestMultigridStrict:
    def _problem(self):
        rng = np.random.default_rng(11)
        src = rng.standard_normal((8, 8, 8))
        rim = np.zeros((10, 10, 10))
        return src, rim

    def test_force_diverge_raises_with_diagnostics(self):
        src, rim = self._problem()
        mg = MultigridSolver(max_cycles=4)
        with pytest.raises(MultigridConvergenceError) as err:
            mg.solve(src, 0.1, rim, strict=True, site=(1, 9),
                     force_diverge=True)
        d = err.value.diagnostics
        assert not d.converged
        assert d.cycles == d.budget == 4
        assert err.value.site == (1, 9)
        assert err.value.phi.shape == rim.shape

    def test_non_strict_stays_silent(self):
        src, rim = self._problem()
        mg = MultigridSolver(max_cycles=4)
        phi = mg.solve(src, 0.1, rim, force_diverge=True)
        assert phi.shape == rim.shape
        assert mg.last_diagnostics is not None
        assert not mg.last_diagnostics.converged

    def test_mg_diverge_fault_triggers_budget_retry(self):
        faults.install(FaultInjector([FaultSpec("mg_diverge", level=1)]))
        sim = build_sim()
        assert sim.hierarchy.max_level == 1  # a level-1 solve exists
        advance(sim, 1)
        ladder = sim.evolver.defense
        assert ladder.totals["rungs"].get("mg_budget_retry") == 1
        retry = [e for e in ladder.drain_events()
                 if e.get("rung") == "mg_budget_retry"]
        assert retry and retry[0]["diagnostics"]["converged"] is False
        for g in sim.hierarchy.all_grids():
            assert np.all(np.isfinite(g.phi))


# ------------------------------------------------------------------ chemistry
class _FakeNetwork:
    """Stands in for ChemistryNetwork: advances nothing, returns stats."""

    def __init__(self):
        self.calls = []

    def advance_fields(self, fields, dt_code, units, a):
        self.calls.append(float(dt_code))
        return {"cells": 1, "tasks": 1, "substeps_total": 4,
                "substeps_max": 2, "active_fraction_mean": 0.5}


def build_chem_sim() -> Simulation:
    """Single root grid (no refinement) with a fake chemistry network."""
    sim = Simulation(SimulationConfig(n_root=8, cfl=0.3))
    sim.set_density(lambda x, y, z: np.full_like(x, 1.0))
    sim.set_field("internal", lambda x, y, z: np.full_like(x, 0.05))
    sim.initialize()
    sim.evolver.chemistry = _FakeNetwork()
    sim.evolver.units = object()  # unused by the fake
    return sim


class TestChemistryLadder:
    def test_blowup_once_is_rescued_by_half_dt_retry(self):
        sim = build_chem_sim()
        faults.install(FaultInjector([
            FaultSpec("chem_blowup", level=0,
                      grid_id=sim.hierarchy.root.grid_id, step=0, count=1),
        ]))
        net = sim.evolver.chemistry
        advance(sim, 1)
        ladder = sim.evolver.defense
        assert ladder.totals["rungs"].get("chem_retry_half_dt") == 1
        # the rescue really ran two half-dt advances
        assert len(net.calls) == 2
        assert net.calls[0] == pytest.approx(net.calls[1])
        # merged halves: 4 + 4 substeps
        assert sim.evolver.chem_stats.substeps_total == 8

    def test_blowup_twice_skips_chemistry_for_the_grid(self):
        sim = build_chem_sim()
        faults.install(FaultInjector([
            FaultSpec("chem_blowup", level=0,
                      grid_id=sim.hierarchy.root.grid_id, step=0, count=2),
        ]))
        net = sim.evolver.chemistry
        advance(sim, 1)
        ladder = sim.evolver.defense
        assert ladder.totals["rungs"].get("chem_skip") == 1
        assert ladder.totals["rungs"].get("chem_retry_half_dt") is None
        assert len(net.calls) == 0  # both the task and the retry raised

    def test_no_fault_chemistry_untouched(self):
        sim = build_chem_sim()
        net = sim.evolver.chemistry
        advance(sim, 1)
        assert sim.evolver.defense.totals["rungs"] == {}
        assert len(net.calls) == 1


# ---------------------------------------------------------------- worker kill
class TestWorkerDeath:
    def test_killed_worker_restarts_and_result_is_bit_exact(self):
        ref = build_sim(defense=False)
        advance(ref, 2)

        # level 1 has several grids, so its dispatch really goes through
        # the pool (a single-task dispatch runs inline and exports nothing)
        faults.install(FaultInjector([
            FaultSpec("worker_kill", level=1, step=0, count=1),
        ]))
        sim = build_sim(defense=True, backend="process", workers=2)
        advance(sim, 2)

        assert_hierarchies_identical(ref.hierarchy, sim.hierarchy)
        restarts = [e for e in sim.evolver.defense.drain_events()
                    if e.get("worker_restart")]
        assert len(restarts) == 1
        assert restarts[0]["retried_tasks"] >= 1


# ---------------------------------------------------------- checkpoint faults
class TestCheckpointTruncate:
    def test_resume_falls_back_past_truncated_checkpoint(self, tmp_path):
        from repro.runtime import CheckpointPolicy

        run_dir = str(tmp_path / "trunc")
        faults.install(FaultInjector([
            FaultSpec("checkpoint_truncate", step=3, count=1),
        ]))
        sim = build_sim()
        sim.make_controller(
            run_dir, policy=CheckpointPolicy(every_steps=1, keep=10),
        ).run(T_END, max_root_steps=3)
        faults.clear()

        # an unfaulted straight run to the same point, for comparison
        ref = build_sim()
        advance(ref, 3)

        sim2 = build_sim()
        ctl2 = sim2.make_controller(run_dir)
        out = ctl2.resume(max_root_steps=3)
        assert out["steps"] == 3
        events = read_events(telemetry_path(run_dir))
        resumes = [e for e in events if e["event"] == "resume"]
        # the step-3 npz was chopped in half, so resume restarted from 2
        # and replayed the third root step bit-exactly
        assert resumes[-1]["step"] == 2
        assert_hierarchies_identical(ref.hierarchy, sim2.hierarchy)


# ------------------------------------------------------------ floor telemetry
class TestDefenseBookkeeping:
    def test_note_floors_and_snapshot(self):
        ladder = DefenseLadder()
        ladder.begin_root_step()
        assert ladder.snapshot() is None
        ladder.note_floors({"density_floor": 2, "internal_floor": 0})
        ladder.note_floors({"density_floor": 1})
        snap = ladder.snapshot()
        assert snap == {"floors": {"density_floor": 3}}
        ladder.begin_root_step()  # per-step counters reset, totals persist
        assert ladder.snapshot() is None
        assert ladder.totals["floors"] == {"density_floor": 3}

    def test_record_event_counts_only_successful_rungs(self):
        ladder = DefenseLadder()
        ladder.begin_root_step()
        ladder.record_event({"rung": "retry_half_dt", "ok": False})
        ladder.record_event({"rung": "first_order", "ok": True})
        ladder.record_event({"worker_restart": True})
        assert ladder.counters == {"first_order": 1}
        assert len(ladder.drain_events()) == 3
        assert ladder.drain_events() == []
