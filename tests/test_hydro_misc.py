"""Unit tests for eos, sources, state helpers and ZEUS specifics."""

import numpy as np
import pytest

from repro import constants as const
from repro.hydro import internal_energy_floor, pressure, sound_speed
from repro.hydro.eos import effective_gamma
from repro.hydro.sources import apply_acceleration, apply_expansion_drag
from repro.hydro.state import (
    FieldSet,
    fill_ghosts_outflow,
    make_fields,
    mass_fractions,
    sync_internal_from_total,
    total_energy,
)


class TestEOS:
    def test_pressure(self):
        assert pressure(2.0, 3.0) == pytest.approx((const.GAMMA - 1) * 6.0)

    def test_sound_speed(self):
        e = 1.0
        cs = sound_speed(e)
        assert cs == pytest.approx(np.sqrt(const.GAMMA * (const.GAMMA - 1)))

    def test_sound_speed_nonnegative_input(self):
        assert sound_speed(-1.0) == 0.0

    def test_internal_energy_floor(self):
        f = make_fields((4, 4, 4), internal_energy=1.0)
        f["internal"][0, 0, 0] = -5.0
        internal_energy_floor(f, floor=1e-10)
        assert f["internal"][0, 0, 0] == 1e-10
        assert np.all(f["energy"] >= f["internal"])

    def test_effective_gamma_limits(self):
        assert effective_gamma(0.0) == pytest.approx(5.0 / 3.0)
        assert effective_gamma(1.0) == pytest.approx(7.0 / 5.0)
        mid = effective_gamma(0.5)
        assert 1.4 < mid < 5.0 / 3.0

    def test_effective_gamma_monotone(self):
        x = np.linspace(0, 1, 11)
        g = effective_gamma(x)
        assert np.all(np.diff(g) < 0)


class TestSources:
    def test_expansion_drag_exact_factors(self):
        f = make_fields((2, 2, 2), velocity=(1.0, 0, 0), internal_energy=1.0)
        apply_expansion_drag(f, a=1.0, adot=0.5, dt=0.2)
        assert f["vx"][0, 0, 0] == pytest.approx(np.exp(-0.1))
        assert f["internal"][0, 0, 0] == pytest.approx(np.exp(-0.2))

    def test_expansion_noop_static(self):
        f = make_fields((2, 2, 2), velocity=(1.0, 0, 0))
        apply_expansion_drag(f, a=1.0, adot=0.0, dt=1.0)
        assert f["vx"][0, 0, 0] == 1.0

    def test_acceleration_energy_consistent(self):
        f = make_fields((2, 2, 2), velocity=(1.0, 0, 0), internal_energy=2.0)
        accel = np.zeros((3, 2, 2, 2))
        accel[0] = 3.0
        apply_acceleration(f, accel, dt=0.1)
        # v: 1.0 -> 1.3; energy gains v_mid * g * dt = 1.15*0.3
        assert f["vx"][0, 0, 0] == pytest.approx(1.3)
        expected_e = 2.0 + 0.5 + 1.15 * 0.3
        assert f["energy"][0, 0, 0] == pytest.approx(expected_e)
        # internal untouched by the kick
        assert f["internal"][0, 0, 0] == 2.0

    def test_acceleration_none_noop(self):
        f = make_fields((2, 2, 2), velocity=(1.0, 0, 0))
        apply_acceleration(f, None, dt=0.1)
        assert f["vx"][0, 0, 0] == 1.0


class TestStateHelpers:
    def test_make_fields_energy(self):
        f = make_fields((2, 2, 2), velocity=(3.0, 4.0, 0.0), internal_energy=1.0)
        assert f["energy"][0, 0, 0] == pytest.approx(1.0 + 12.5)

    def test_deep_copy_independent(self):
        f = make_fields((2, 2, 2), advected=["HI"])
        g = f.deep_copy()
        g["density"][0, 0, 0] = 99.0
        assert f["density"][0, 0, 0] == 1.0
        assert g.advected == ["HI"]

    def test_sync_internal_selection(self):
        f = make_fields((2, 2, 2), velocity=(10.0, 0, 0), internal_energy=1e-8)
        # healthy case in one cell: thermal dominates
        f["vx"][0, 0, 0] = 0.0
        f["energy"][0, 0, 0] = 2.0
        f["internal"][0, 0, 0] = 1.0  # stale
        sync_internal_from_total(f)
        # trusted total: e = E - 0 = 2.0
        assert f["internal"][0, 0, 0] == pytest.approx(2.0)
        # hypersonic cell keeps its separately tracked internal energy
        assert f["internal"][1, 1, 1] == pytest.approx(1e-8)

    def test_mass_fractions(self):
        f = make_fields((2, 2, 2), density=2.0, advected=["HI"])
        f["HI"][:] = 0.5
        fr = mass_fractions(f, ["HI"])
        assert np.all(fr["HI"] == 0.25)

    def test_outflow_ghost_fill(self):
        f = make_fields((10, 10, 10))
        f["density"][3:7, 3:7, 3:7] = 5.0
        f["density"][3, :, :] = 7.0
        fill_ghosts_outflow(f, 3, axes=(0,))
        np.testing.assert_array_equal(f["density"][0], f["density"][3])
        np.testing.assert_array_equal(f["density"][9], f["density"][6])

    def test_total_energy(self):
        f = make_fields((2, 2, 2), velocity=(1.0, 2.0, 2.0), internal_energy=0.5)
        np.testing.assert_allclose(total_energy(f), 0.5 + 4.5)


class TestZeusSpecifics:
    def test_artificial_viscosity_heats_compression(self):
        """A converging flow must heat up (shock capture via q-viscosity)."""
        from repro.hydro import ZeusSolver
        from repro.hydro.state import fill_ghosts_periodic

        n, ng = 32, 3
        shape = (n + 2 * ng, 1 + 2 * ng, 1 + 2 * ng)
        f = make_fields(shape, density=1.0, internal_energy=1e-4)
        x = (np.arange(n + 2 * ng) - ng + 0.5) / n
        f["vx"][:] = np.where(x < 0.5, 1.0, -1.0)[:, None, None]
        f["energy"][:] = total_energy(f)
        solver = ZeusSolver()
        e0 = f["internal"][ng + n // 2, ng, ng]
        for step in range(10):
            fill_ghosts_periodic(f, ng)
            solver.step(f, 1.0 / n, 0.002, permute=step)
        e1 = f["internal"][ng + n // 2, ng, ng]
        assert e1 > 10 * e0

    def test_zeus_positivity(self):
        from repro.hydro import ZeusSolver
        from repro.hydro.state import fill_ghosts_periodic

        rng = np.random.default_rng(3)
        shape = (14, 14, 14)
        f = make_fields(shape, density=1.0, internal_energy=1.0)
        f["density"][:] = 0.1 + rng.random(shape)
        f["vx"][:] = rng.standard_normal(shape)
        fill_ghosts_periodic(f, 3)
        f["energy"] = total_energy(f)
        solver = ZeusSolver()
        for step in range(20):
            fill_ghosts_periodic(f, 3)
            solver.step(f, 1.0 / 8, 0.005, permute=step)
        assert np.all(f["density"] > 0)
        assert np.all(f["internal"] > 0)
