"""Tests for the Jacques navigator and column-density projections."""

import numpy as np
import pytest

from repro.amr import Grid, Hierarchy
from repro.amr.boundary import set_boundary_values
from repro.analysis import Jacques, column_density


@pytest.fixture
def hierarchy():
    h = Hierarchy(n_root=16)
    root = h.root
    x, y, z = np.meshgrid(*root.cell_centres(), indexing="ij")
    r2 = (x - 0.3) ** 2 + (y - 0.6) ** 2 + (z - 0.5) ** 2
    root.fields["density"][root.interior] = 1.0 + 20.0 * np.exp(-r2 / 0.003)
    root.fields["vx"][root.interior] = 0.1
    set_boundary_values(h, 0)
    child = Grid(1, (6, 16, 12), (8, 8, 8), n_root=16)
    h.add_grid(child, root)
    xc, yc, zc = np.meshgrid(*child.cell_centres(), indexing="ij")
    r2c = (xc - 0.3) ** 2 + (yc - 0.6) ** 2 + (zc - 0.5) ** 2
    child.fields["density"][child.interior] = 1.0 + 20.0 * np.exp(-r2c / 0.003)
    set_boundary_values(h, 1)
    return h


class TestJacques:
    def test_goto_densest(self, hierarchy):
        j = Jacques(hierarchy)
        j.goto_densest()
        assert np.all(np.abs(j.centre - [0.3, 0.6, 0.5]) < 0.1)

    def test_zoom_state(self, hierarchy):
        j = Jacques(hierarchy)
        j.zoom_in(10).zoom_in(10)
        assert j.width == pytest.approx(0.01)
        j.zoom_out(1000)
        assert j.width == 1.0  # clamped to the box

    def test_zoom_by_1e10_button(self, hierarchy):
        """The famous button: must not crash, state must follow."""
        j = Jacques(hierarchy).goto_densest()
        j.zoom_in(1e10)
        assert j.width == pytest.approx(1e-10)
        img = j.slice()  # deep-zoom slice still renders (coarse data)
        assert img.shape == (32, 32)

    def test_pan_wraps(self, hierarchy):
        j = Jacques(hierarchy)
        j.pan(0.6, 0.0)
        assert 0.0 <= j.centre[0] < 1.0

    def test_look_along(self, hierarchy):
        j = Jacques(hierarchy)
        j.look_along(0)
        assert j.axis == 0
        u, v = j.velocity_slice()
        # in-plane components for axis 0 are vy, vz (vx=0.1 excluded)
        assert np.nanmax(np.abs(u)) < 0.05

    def test_slice_sees_blob(self, hierarchy):
        j = Jacques(hierarchy).goto([0.3, 0.6, 0.5])
        img = j.slice()
        assert np.nanmax(img) > 5.0

    def test_profile_from_view(self, hierarchy):
        j = Jacques(hierarchy).goto_densest()
        j.width = 0.5
        prof = j.profile(nbins=8)
        rho = prof["density"]
        ok = np.isfinite(rho)
        assert rho[ok][0] > rho[ok][-1]

    def test_render_and_status(self, hierarchy):
        j = Jacques(hierarchy).goto_densest()
        text = j.render()
        assert "Jacques @" in text
        st = j.status()
        assert st["finest_level_here"] == 1
        assert st["max_level"] == 1

    def test_velocity_slice_shapes(self, hierarchy):
        j = Jacques(hierarchy)
        u, v = j.velocity_slice()
        assert u.shape == v.shape == (32, 32)


class TestColumnDensity:
    def test_uniform_box(self, hierarchy):
        h = Hierarchy(n_root=8)
        h.root.fields["density"][:] = 2.0
        cd = column_density(h, resolution=8, samples=8)
        np.testing.assert_allclose(cd, 2.0)

    def test_blob_appears_in_projection(self, hierarchy):
        cd = column_density(hierarchy, axis=2, resolution=16, samples=16)
        # projected peak near (0.3, 0.6)
        i, jx = np.unravel_index(np.argmax(cd), cd.shape)
        assert abs((i + 0.5) / 16 - 0.3) < 0.15
        assert abs((jx + 0.5) / 16 - 0.6) < 0.15

    def test_projection_uses_jacques(self, hierarchy):
        j = Jacques(hierarchy, resolution=16).goto([0.3, 0.6, 0.5])
        j.width = 0.5
        cd = j.projection(samples=8)
        assert cd.shape == (16, 16)
        assert np.all(np.isfinite(cd))
