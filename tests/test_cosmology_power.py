"""Tests for the power spectrum, Gaussian fields and units."""

import numpy as np
import pytest

from repro import constants as const
from repro.cosmology import (
    CodeUnits,
    CosmologyParameters,
    GaussianRandomField,
    PowerSpectrum,
    STANDARD_CDM,
    bbks_transfer,
    eisenstein_hu_transfer,
)
from repro.cosmology.gaussian_field import degrade_field


@pytest.fixture(scope="module")
def pk():
    return PowerSpectrum(STANDARD_CDM)


class TestTransferFunctions:
    def test_bbks_large_scale_limit(self):
        assert abs(bbks_transfer(np.array([1e-6]), 0.5)[0] - 1.0) < 1e-3

    def test_bbks_small_scale_suppression(self):
        t = bbks_transfer(np.array([0.1, 1.0, 10.0, 100.0]), 0.5)
        assert np.all(np.diff(t) < 0)
        assert t[-1] < 1e-3

    def test_eh_large_scale_limit(self):
        t = eisenstein_hu_transfer(np.array([1e-6]), 1.0, 0.06, 0.5)
        assert abs(t[0] - 1.0) < 1e-2

    def test_eh_vs_bbks_same_ballpark(self):
        k = np.logspace(-2, 1, 20)
        t1 = bbks_transfer(k, 0.5)
        t2 = eisenstein_hu_transfer(k, 1.0, 0.06, 0.5)
        ratio = t1 / t2
        assert np.all((ratio > 0.4) & (ratio < 2.5))


class TestPowerSpectrum:
    def test_sigma8_normalisation(self, pk):
        assert abs(pk.sigma_r(8.0) - STANDARD_CDM.sigma8) < 1e-6

    def test_zero_k(self, pk):
        assert pk(0.0) == 0.0

    def test_positive(self, pk):
        k = np.logspace(-4, 3, 50)
        assert np.all(pk(k) > 0)

    def test_growth_scaling(self, pk):
        # EdS: P(k, z) = P(k,0) / (1+z)^2
        k = 1.0
        assert np.isclose(pk.at_redshift(k, 99.0), pk(k) / 100.0**2, rtol=1e-10)

    def test_sigma_mass_monotone_decreasing(self, pk):
        # bottom-up structure formation: small masses collapse first
        masses = [1e5, 1e7, 1e9, 1e12, 1e15]
        sig = [pk.sigma_mass(m) for m in masses]
        assert all(a > b for a, b in zip(sig, sig[1:]))

    def test_small_scale_log_divergence(self, pk):
        # paper: "rms density fluctuations are logarithmically divergent on
        # small mass scales" — sigma keeps growing to tiny masses but slowly
        s1 = pk.sigma_mass(1e4)
        s2 = pk.sigma_mass(1e6)
        assert s1 > s2
        assert s1 / s2 < 2.0  # logarithmic, not power-law, growth

    def test_protogalactic_scale_collapses_at_z20(self, pk):
        # the paper's halo: few x 1e5 Msun becomes nonlinear around z~20-30
        sigma = pk.sigma_mass(5e5, z=20.0)
        # within a factor ~3 of the delta_c=1.69 collapse threshold for a
        # 2-3 sigma peak: 1.69/3 ~ 0.56 ... 1.69
        assert 0.1 < sigma < 2.0

    def test_unknown_transfer_raises(self):
        with pytest.raises(ValueError):
            PowerSpectrum(STANDARD_CDM, transfer="nope")


class TestGaussianField:
    def test_zero_mean(self):
        f = GaussianRandomField(16, 1.0, lambda k: np.where(k > 0, k ** -1.0, 0.0), seed=1)
        assert abs(f.delta.mean()) < 1e-12

    def test_reproducible_seed(self):
        p = lambda k: np.where(k > 0, 1.0, 0.0)
        a = GaussianRandomField(8, 1.0, p, seed=5).delta
        b = GaussianRandomField(8, 1.0, p, seed=5).delta
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        p = lambda k: np.where(k > 0, 1.0, 0.0)
        a = GaussianRandomField(8, 1.0, p, seed=1).delta
        b = GaussianRandomField(8, 1.0, p, seed=2).delta
        assert not np.allclose(a, b)

    def test_measured_power_matches_input(self):
        # white-noise spectrum: P = const; estimator must recover it closely
        target = 2.5
        f = GaussianRandomField(32, 10.0, lambda k: np.full_like(k, target), seed=3)
        k, p = f.measured_power(nbins=8)
        assert np.all(np.abs(p / target - 1.0) < 0.35)

    def test_power_law_spectrum_slope(self):
        f = GaussianRandomField(32, 10.0, lambda k: np.where(k > 0, k**-2.0, 0.0), seed=4)
        k, p = f.measured_power(nbins=8)
        slope = np.polyfit(np.log(k), np.log(p), 1)[0]
        assert abs(slope + 2.0) < 0.3

    def test_displacement_is_real_and_divergence_free_check(self):
        f = GaussianRandomField(16, 1.0, lambda k: np.where(k > 0, k**-2, 0.0), seed=6)
        psi = f.displacement()
        assert psi.shape == (3, 16, 16, 16)
        assert np.all(np.isfinite(psi))
        # Zel'dovich displacement is curl-free: checking one component of
        # curl via spectral derivative should vanish to fft precision
        k1 = 2 * np.pi * np.fft.fftfreq(16, d=1.0 / 16)
        kx, ky, _ = np.meshgrid(k1, k1, k1, indexing="ij")
        curl_z = np.fft.ifftn(
            1j * kx * np.fft.fftn(psi[1]) - 1j * ky * np.fft.fftn(psi[0])
        )
        assert np.max(np.abs(curl_z)) < 1e-10 * max(np.max(np.abs(psi)), 1e-30)

    def test_degrade_preserves_mean(self):
        f = GaussianRandomField(16, 1.0, lambda k: np.where(k > 0, 1.0, 0.0), seed=7)
        coarse = f.degraded(4)
        assert coarse.shape == (4, 4, 4)
        assert abs(coarse.mean() - f.delta.mean()) < 1e-14

    def test_degrade_field_validation(self):
        with pytest.raises(ValueError):
            degrade_field(np.zeros((8, 8, 4)), 2)
        with pytest.raises(ValueError):
            degrade_field(np.zeros((9, 9, 9)), 2)

    def test_min_size_validation(self):
        with pytest.raises(ValueError):
            GaussianRandomField(1, 1.0, lambda k: k)


class TestCodeUnits:
    def test_paper_box(self):
        u = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        assert np.isclose(u.length_unit, 256.0 * const.KILOPARSEC)
        assert u.a_initial == pytest.approx(1.0 / 101.0)

    def test_density_unit_is_mean_matter(self):
        u = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        assert np.isclose(u.density_unit, STANDARD_CDM.mean_matter_density_z0)

    def test_dynamical_time_order_one(self):
        # code time unit = dynamical time at start: H*t ~ O(1)
        from repro.cosmology import FriedmannSolver

        u = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        fr = FriedmannSolver(STANDARD_CDM)
        ht = float(fr.hubble(u.a_initial)) * u.time_unit
        assert 0.1 < ht < 10.0

    def test_temperature_energy_roundtrip(self):
        u = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        t_in = 200.0
        e = u.energy_from_temperature(t_in, const.MU_NEUTRAL, u.a_initial)
        t_out = u.temperature_from_energy(e, const.MU_NEUTRAL, u.a_initial)
        assert np.isclose(float(t_out), t_in)

    def test_mean_density_is_unity_in_code(self):
        u = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        rho_cgs = u.proper_density_cgs(1.0, u.a_initial)
        expected = STANDARD_CDM.mean_matter_density_z0 / u.a_initial**3
        assert np.isclose(float(rho_cgs), expected)

    def test_number_density_paper_scale(self):
        # cosmic mean baryon number density at z=100 should be ~ 0.1-1 cm^-3
        u = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        frac = STANDARD_CDM.omega_baryon / STANDARD_CDM.omega_matter
        n = float(u.number_density_cgs(frac, u.a_initial, const.MU_NEUTRAL))
        assert 0.01 < n < 10.0

    def test_jeans_length_scales(self):
        u = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        e = float(u.energy_from_temperature(200.0, 1.22, u.a_initial))
        lj_lowrho = float(u.jeans_length_code(1.0, e, u.a_initial))
        lj_highrho = float(u.jeans_length_code(100.0, e, u.a_initial))
        assert lj_highrho < lj_lowrho  # L_J ~ rho^-1/2
        assert np.isclose(lj_lowrho / lj_highrho, 10.0)

    def test_gravity_constant_code_positive(self):
        u = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        assert u.gravity_constant_code > 0

    def test_simple_units(self):
        u = CodeUnits.simple()
        assert u.mass_unit == 1.0
        assert u.velocity_unit == 1.0
