"""Flow-feature refinement criteria: shock detection and vorticity.

Each test builds analytic fields on the full ghosted root array (no
ghost fill), so stencil neighbours are exact continuations and the
expected flag sets can be pinned cell-for-cell.  The chaos entry runs
the Kelvin-Helmholtz workload with an injected NaN and checks the
defense ladder rescues it without losing scalar mass.
"""

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.amr import Hierarchy, RefinementCriteria
from repro.runtime import faults
from repro.runtime.faults import FaultInjector, FaultSpec

N = 16


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    faults.clear()
    yield
    faults.clear()


def make_root(n: int = N):
    """An allocated root grid; fields set analytically including ghosts."""
    return Hierarchy(n_root=n).root


def ghosted_coords(grid):
    """Cell-centre coordinate arrays over the full ghosted extent."""
    ng = grid.nghost
    axes = [
        (np.arange(-ng, int(d) + ng) + 0.5) * grid.dx for d in grid.dims
    ]
    return np.meshgrid(*axes, indexing="ij")


def uniform_state(grid, rho: float = 1.0, internal: float = 1.0):
    grid.fields["density"][:] = rho
    grid.fields["internal"][:] = internal
    grid.fields["energy"][:] = internal


class TestShockCriterion:
    def _planar_shock(self, grid):
        """Pressure jump at x = 0.5 with converging flow across it."""
        x, _, _ = ghosted_coords(grid)
        uniform_state(grid)
        grid.fields["internal"][:] = np.where(x < 0.5, 1.0, 10.0)
        grid.fields["vx"][:] = np.where(x < 0.5, 1.0, -1.0)
        grid.fields["energy"][:] = (
            grid.fields["internal"] + 0.5 * grid.fields["vx"] ** 2
        )

    def test_flags_exactly_the_jump_planes(self):
        grid = make_root()
        self._planar_shock(grid)
        crit = RefinementCriteria(shock_threshold=0.33)
        flags = crit.flag_cells(grid)
        # the centred stencil sees the jump from the two abutting planes
        expected = np.zeros((N, N, N), dtype=bool)
        expected[N // 2 - 1: N // 2 + 1, :, :] = True
        np.testing.assert_array_equal(flags, expected)
        assert crit.last_flag_counts == {"shock": 2 * N * N}

    def test_diverging_jump_not_flagged(self):
        # same pressure jump, but the flow pulls apart: no shock
        grid = make_root()
        self._planar_shock(grid)
        grid.fields["vx"][:] = -grid.fields["vx"]
        flags = RefinementCriteria(shock_threshold=0.33).flag_cells(grid)
        assert not flags.any()

    def test_solid_body_rotation_flags_nothing(self):
        grid = make_root()
        uniform_state(grid)
        x, y, _ = ghosted_coords(grid)
        omega = 1.0
        grid.fields["vx"][:] = -omega * (y - 0.5)
        grid.fields["vy"][:] = omega * (x - 0.5)
        grid.fields["energy"][:] = grid.fields["internal"] + 0.5 * (
            grid.fields["vx"] ** 2 + grid.fields["vy"] ** 2
        )
        crit = RefinementCriteria(shock_threshold=0.33,
                                  vorticity_threshold=0.3)
        flags = crit.flag_cells(grid)
        # no compression and |omega| dx well under 0.3 c_s: nothing flags
        assert not flags.any()
        assert crit.last_flag_counts == {"shock": 0, "vorticity": 0}


class TestVorticityCriterion:
    def test_shear_layer_flags_the_interface(self):
        grid = make_root()
        uniform_state(grid)
        _, y, _ = ghosted_coords(grid)
        grid.fields["vx"][:] = np.where(y < 0.5, 1.0, -1.0)
        grid.fields["energy"][:] = (
            grid.fields["internal"] + 0.5 * grid.fields["vx"] ** 2
        )
        crit = RefinementCriteria(vorticity_threshold=0.3)
        flags = crit.flag_cells(grid)
        expected = np.zeros((N, N, N), dtype=bool)
        expected[:, N // 2 - 1: N // 2 + 1, :] = True
        np.testing.assert_array_equal(flags, expected)
        assert crit.last_flag_counts == {"vorticity": 2 * N * N}

    def test_resolved_shear_converges_away(self):
        # the same tanh shear resolved by more cells stops flagging:
        # |omega| dx halves per refinement while c_s stays fixed
        def count(n):
            grid = make_root(n)
            uniform_state(grid)
            _, y, _ = ghosted_coords(grid)
            grid.fields["vx"][:] = np.tanh((y - 0.5) / 0.25)
            grid.fields["energy"][:] = (
                grid.fields["internal"] + 0.5 * grid.fields["vx"] ** 2
            )
            crit = RefinementCriteria(vorticity_threshold=0.2)
            crit.flag_cells(grid)
            return crit.last_flag_counts["vorticity"]

        assert count(32) == 0
        assert count(8) > 0  # under-resolved at 8^3: dv per cell is large


class TestFlagCellsContract:
    def test_ghost_garbage_never_flags_or_crashes(self):
        """Audit: ghost zones are stencil inputs, never flagged, and
        interior-only criteria are immune to ghost contents entirely."""
        grid = make_root()
        uniform_state(grid)
        grid.fields["density"][grid.interior] = 1.0 + np.arange(
            N**3, dtype=float).reshape(N, N, N) / N**3
        crit = RefinementCriteria(gas_mass_threshold=1.5 * (1.0 / N) ** 3,
                                  overdensity_threshold=1.5)
        clean = crit.flag_cells(grid).copy()
        clean_counts = dict(crit.last_flag_counts)
        # poison every ghost zone
        interior_mask = np.zeros(grid.shape_with_ghosts, dtype=bool)
        interior_mask[grid.interior] = True
        for name in ("density", "internal", "vx", "vy", "vz", "energy"):
            grid.fields[name][~interior_mask] = np.nan
        np.testing.assert_array_equal(crit.flag_cells(grid), clean)
        assert crit.last_flag_counts == clean_counts
        # stencil criteria read the poisoned ghosts: they must neither
        # crash nor flag on NaN comparisons
        stencil = RefinementCriteria(shock_threshold=0.33,
                                     vorticity_threshold=0.3)
        with np.errstate(invalid="ignore"):
            flags = stencil.flag_cells(grid)
        assert flags.shape == (N, N, N)
        assert not flags[1:-1, 1:-1, 1:-1].any()

    def test_max_level_short_circuits(self):
        grid = make_root()
        uniform_state(grid)
        crit = RefinementCriteria(overdensity_threshold=0.1, max_level=0)
        flags = crit.flag_cells(grid)
        assert not flags.any()
        assert crit.last_flag_counts == {}


class TestFlagTelemetry:
    def test_mixed_mass_shock_counts_reach_rebuild_stats(self):
        """Pinned counts for a mass + shock config flow into the rebuild
        stats and the per-step telemetry dict."""
        sim = Simulation(SimulationConfig(
            n_root=8, max_level=1, refine_gas_mass=2.0 * (1.0 / 8) ** 3,
            refine_shock=0.33, cfl=0.3,
        ))
        sim.set_density(lambda x, y, z: np.where(x < 0.5, 1.0, 4.0))
        sim.set_field("internal", lambda x, y, z: np.full_like(x, 2.0))
        sim.set_field("vx", lambda x, y, z: np.where(x < 0.5, 1.0, -1.0))
        sim.initialize()
        flags = sim.hierarchy.last_rebuild_stats["flags"]
        # gas_mass: the dense half = 256 cells; shock: the two planes
        # abutting the converging jump at x = 0.5 (the periodic wrap jump
        # is diverging there, so it must NOT count)
        assert flags == {"gas_mass": 256, "shock": 128}
        sim.evolver.advance_root_step(0.5)
        step_stats = sim.evolver.rebuild_step_stats()
        assert set(step_stats["flags"]) <= {"gas_mass", "shock"}


class TestKelvinHelmholtzChaos:
    def test_nan_injection_is_rescued_with_scalars_intact(self):
        from repro.problems import KelvinHelmholtz

        kh = KelvinHelmholtz(n_root=8, n_scalars=1)
        root = kh.sim.hierarchy.root
        gas0 = float(root.fields["density"][root.interior].sum())
        mass0 = kh.scalar_mass()
        faults.install(FaultInjector([
            FaultSpec("nan_cell", level=0, grid_id=root.grid_id, step=0,
                      count=1),
        ], seed=7))
        kh.run(t_end=0.05)
        ladder = kh.sim.evolver.defense
        assert ladder.totals["rungs"].get("retry_half_dt") == 1
        assert ladder.totals["escalations"] == 0
        for g in kh.sim.hierarchy.all_grids():
            for name in ("density", "energy", "scalar00"):
                assert np.all(np.isfinite(g.fields[name]))
        # the in-place retry reuses pre-step ghosts for its second half
        # step, so it drifts mass by a bounded amount (validate_grid's
        # mass_drift_tol contract); scalars must do no worse than gas
        gas_drift = abs(
            float(root.fields["density"][root.interior].sum()) - gas0
        ) / gas0
        scalar_drift = abs(kh.scalar_mass() - mass0) / mass0
        assert scalar_drift < 1e-5
        assert scalar_drift <= 10.0 * max(gas_drift, 1e-12)
