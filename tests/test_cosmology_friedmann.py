"""Tests for the Friedmann background solver."""

import numpy as np
import pytest

from repro import constants as const
from repro.cosmology import CosmologyParameters, FriedmannSolver, STANDARD_CDM


@pytest.fixture(scope="module")
def eds():
    return FriedmannSolver(STANDARD_CDM)


@pytest.fixture(scope="module")
def lcdm():
    return FriedmannSolver(
        CosmologyParameters(omega_matter=0.3, omega_lambda=0.7, omega_baryon=0.045, hubble=0.7)
    )


class TestEinsteinDeSitter:
    def test_age_today(self, eds):
        # EdS: t0 = 2/(3 H0); h=0.5 -> H0 = 50 km/s/Mpc -> t0 ~ 13.04 Gyr
        t0 = eds.age_today()
        expected = 2.0 / (3.0 * STANDARD_CDM.h0_cgs)
        assert abs(t0 - expected) / expected < 1e-12

    def test_a_t_roundtrip(self, eds):
        a = np.array([1e-3, 0.01, 0.1, 0.5, 1.0])
        t = eds.time_of_a(a)
        back = eds.a_of_time(t)
        np.testing.assert_allclose(back, a, rtol=1e-12)

    def test_power_law(self, eds):
        # a ~ t^(2/3): doubling t multiplies a by 2^(2/3)
        t = eds.time_of_a(0.01)
        ratio = eds.a_of_time(2 * t) / eds.a_of_time(t)
        assert abs(ratio - 2 ** (2.0 / 3.0)) < 1e-12

    def test_hubble_scaling(self, eds):
        # H ~ a^{-3/2} in EdS
        assert np.isclose(eds.hubble(0.25) / eds.hubble(1.0), 8.0)

    def test_growth_factor_is_a(self, eds):
        a = np.linspace(0.001, 1.0, 10)
        np.testing.assert_allclose(eds.growth_factor(a), a, rtol=1e-12)

    def test_growth_rate_unity(self, eds):
        assert np.allclose(eds.growth_rate(np.array([0.01, 0.5])), 1.0)

    def test_paper_epoch(self, eds):
        # paper: z~20 is "approximately 150 million years after the big bang"
        t_z20 = float(eds.time_of_z(20.0)) / const.MEGAYEAR
        assert 100 < t_z20 < 200

    def test_few_million_years_start(self, eds):
        # "a few million years after the big bang" for z ~ 100
        t = float(eds.time_of_z(100.0)) / const.MEGAYEAR
        assert 5 < t < 20


class TestGeneralModel:
    def test_a_t_roundtrip(self, lcdm):
        a = np.array([1e-3, 0.01, 0.1, 0.5, 1.0])
        np.testing.assert_allclose(lcdm.a_of_time(lcdm.time_of_a(a)), a, rtol=1e-6)

    def test_age_exceeds_eds(self, lcdm):
        # Lambda makes the universe older at fixed H0
        eds_same_h = FriedmannSolver(
            CosmologyParameters(omega_matter=1.0, omega_lambda=0.0, omega_baryon=0.045, hubble=0.7)
        )
        assert lcdm.age_today() > eds_same_h.age_today()

    def test_growth_normalised(self, lcdm):
        assert abs(float(lcdm.growth_factor(1.0)) - 1.0) < 1e-10

    def test_growth_suppressed_late(self, lcdm):
        # Lambda suppresses growth: D(a)/a falls below 1 approaching a=1
        assert float(lcdm.growth_factor(1.0)) / 1.0 < float(lcdm.growth_factor(0.05)) / 0.05

    def test_growth_matches_eds_early(self, lcdm):
        # at high z, any model is matter dominated: D ~ a up to normalisation
        d1 = float(lcdm.growth_factor(0.002))
        d2 = float(lcdm.growth_factor(0.004))
        assert abs(d2 / d1 - 2.0) < 0.01

    def test_growth_rate_below_one(self, lcdm):
        assert float(lcdm.growth_rate(1.0)) < 1.0

    def test_hubble_today(self, lcdm):
        assert np.isclose(float(lcdm.hubble(1.0)), lcdm.params.h0_cgs)


def test_redshift_scale_factor_inverse():
    z = np.array([0.0, 1.0, 9.0, 99.0])
    a = FriedmannSolver.scale_factor(z)
    np.testing.assert_allclose(FriedmannSolver.redshift(a), z)


def test_addot_sign():
    eds = FriedmannSolver(STANDARD_CDM)
    assert float(eds.addot(0.5)) < 0  # decelerating
    lam = FriedmannSolver(CosmologyParameters(omega_matter=0.3, omega_lambda=0.7, omega_baryon=0.04, hubble=0.7))
    assert float(lam.addot(1.0)) > 0  # accelerating today
