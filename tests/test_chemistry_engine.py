"""Tests for the tabulated-rate / active-set chemistry engine (PR 4).

Covers the tentpole properties the issue demands: tabulated-vs-analytic
agreement on random log-T draws, positivity, exact elemental-nuclei
conservation after renormalisation, active-set equality with the
cell-by-cell path on mixed hot/cold grids, and the stats plumbing
(network -> evolver aggregate -> telemetry record, timers.add_stat).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import constants as const
from repro.chemistry import cooling as cool_mod
from repro.chemistry.network import (
    ChemistryNetwork,
    ChemistryStepStats,
    primordial_initial_fractions,
)
from repro.chemistry.rates import RateTable, _get_table
from repro.chemistry.species import SPECIES, SPECIES_NAMES

RNG = np.random.default_rng(1234)


def mixed_state(n_cells: int, seed: int = 7):
    """Random mixed hot/cold, thin/dense state (proper cgs)."""
    rng = np.random.default_rng(seed)
    T = 10 ** rng.uniform(1.5, 6.0, n_cells)
    rho = 10 ** rng.uniform(-24.0, -19.0, n_cells)
    x_e = 10 ** rng.uniform(-4.0, -0.3, n_cells)
    f_h2 = 10 ** rng.uniform(-7.0, -4.0, n_cells)
    fr = primordial_initial_fractions(x_e=x_e, f_h2=f_h2)
    n = {
        s: fr[s] * rho / (SPECIES[s].mass_amu * const.HYDROGEN_MASS)
        for s in SPECIES_NAMES
    }
    e = ChemistryNetwork.energy_from_temperature(n, T, rho)
    return n, e, rho


# --------------------------------------------------------- tabulated rates
def test_tabulated_rates_match_analytic_on_random_draws():
    T = 10 ** RNG.uniform(0.0, 9.0, 30000)
    ana = RateTable(mode="analytic")
    tab = RateTable()
    ka, ca = ana.channels(T)
    kt, ct = tab.channels(T)
    for name in RateTable.RATE_NAMES:
        err = np.abs(kt[name] - ka[name]) / np.maximum(np.abs(ka[name]), 1e-280)
        assert err.max() <= 1e-3, (name, err.max())
    for name in ca:
        err = np.abs(ct[name] - ca[name]) / np.maximum(np.abs(ca[name]), 1e-280)
        assert err.max() <= 1e-3, (name, err.max())


def test_analytic_mode_is_bitwise_the_static_fits():
    T = 10 ** RNG.uniform(0.0, 9.0, 5000)
    ana = RateTable(mode="analytic")
    k = ana(T)
    np.testing.assert_array_equal(k["k1"], RateTable.k1_HI_ionisation(T))
    np.testing.assert_array_equal(k["k9"], RateTable.k9_H2II_formation(T))
    np.testing.assert_array_equal(k["k14"], RateTable.k14_HM_e_detachment(T))
    np.testing.assert_array_equal(k["d1"], RateTable.d1_DII_recombination(T))


def test_piecewise_branch_switches_are_exact():
    # values straddling the k9 (6700 K) and k14 (0.04 eV) discontinuities
    T = np.array([6699.0, 6700.0, 6701.0, 0.04 * 11604.5 * 0.999,
                  0.04 * 11604.5 * 1.001])
    tab = RateTable()
    k = tab(T)
    assert k["k14"][3] == 0.0 and k["k14"][4] > 0.0
    # the branch choice must match the analytic where() exactly
    ana = RateTable(mode="analytic")(T)
    assert np.all((k["k9"] > 0) == (ana["k9"] > 0))


def test_table_accuracy_guard_raises_on_coarse_table():
    with pytest.raises(ValueError, match="rtol"):
        RateTable(n_bins=64)


def test_table_cached_per_configuration():
    assert _get_table(8192, 1.0, 1e9) is _get_table(8192, 1.0, 1e9)
    a = RateTable()
    b = RateTable()
    assert a._ensure_table() is b._ensure_table()


def test_rate_table_pickle_drops_and_rebuilds_table():
    tab = RateTable()
    blob = pickle.dumps(tab)
    # the multi-MB table must not travel in the pickle
    assert len(blob) < 4096
    back = pickle.loads(blob)
    T = np.array([1e2, 1e4, 1e6])
    for name in RateTable.RATE_NAMES:
        np.testing.assert_array_equal(back(T)[name], tab(T)[name])


def test_cooling_channels_assembly_matches_direct_evaluation():
    n, e, rho = mixed_state(2000, seed=3)
    T = ChemistryNetwork.temperature(n, e, rho)
    ch = cool_mod.cooling_channels(T)
    direct = cool_mod.cooling_rate(n, T, 12.0)
    assembled = cool_mod.cooling_rate_from_channels(n, T, 12.0, ch)
    np.testing.assert_array_equal(assembled, direct)


# ------------------------------------------------------- active-set solver
def test_active_set_matches_cell_by_cell_integration():
    n, e, rho = mixed_state(64, seed=11)
    net = ChemistryNetwork()
    dt = 1.0e12
    n_full, e_full = net.advance(n, e, rho, dt, z=18.0)
    for idx in range(0, 64, 7):
        n_one = {s: np.array([n[s][idx]]) for s in SPECIES_NAMES}
        n1, e1 = net.advance(n_one, np.array([e[idx]]), np.array([rho[idx]]),
                             dt, z=18.0)
        for s in SPECIES_NAMES:
            np.testing.assert_array_equal(n1[s][0], n_full[s][idx])
        np.testing.assert_array_equal(e1[0], e_full[idx])


def test_positivity_on_random_mixed_states():
    for seed in (1, 2, 3):
        n, e, rho = mixed_state(512, seed=seed)
        net = ChemistryNetwork()
        n_out, e_out = net.advance(n, e, rho, 3.0e13, z=15.0)
        for s in SPECIES_NAMES:
            assert np.all(n_out[s] >= 0.0), s
        assert np.all(e_out > 0.0)


def test_exact_nuclei_conservation_after_renormalisation():
    n, e, rho = mixed_state(512, seed=5)
    net = ChemistryNetwork()
    n_out, _ = net.advance(n, e, rho, 3.0e13, z=15.0)
    for budget in (
        lambda d: d["HI"] + d["HII"] + d["HM"]
        + 2.0 * (d["H2I"] + d["H2II"]) + d["HDI"],
        lambda d: d["HeI"] + d["HeII"] + d["HeIII"],
        lambda d: d["DI"] + d["DII"] + d["HDI"],
    ):
        before, after = budget(n), budget(n_out)
        np.testing.assert_allclose(after, before, rtol=1e-12)


def test_tabulated_and_analytic_networks_agree_physically():
    n, e, rho = mixed_state(256, seed=9)
    dt = 1.0e13
    n_tab, e_tab = ChemistryNetwork().advance(n, e, rho, dt, z=15.0)
    n_ana, e_ana = ChemistryNetwork(rates=RateTable(mode="analytic")).advance(
        n, e, rho, dt, z=15.0
    )
    T_tab = ChemistryNetwork.temperature(n_tab, e_tab, rho)
    T_ana = ChemistryNetwork.temperature(n_ana, e_ana, rho)
    assert np.max(np.abs(T_tab - T_ana) / T_ana) < 0.05
    n_h = n["HI"] + n["HII"]
    for s in SPECIES_NAMES:
        assert np.max(np.abs(n_tab[s] - n_ana[s]) / np.maximum(n_h, 1e-300)) < 1e-3, s


def test_advance_handles_scalars_and_3d_shapes():
    n, e, rho = mixed_state(8, seed=2)
    net = ChemistryNetwork()
    n3 = {s: n[s].reshape(2, 2, 2) for s in SPECIES_NAMES}
    n_out, e_out = net.advance(n3, e.reshape(2, 2, 2), rho.reshape(2, 2, 2), 1e11)
    assert e_out.shape == (2, 2, 2)
    n1 = {s: float(n[s][0]) for s in SPECIES_NAMES}
    n_out1, e_out1 = net.advance(n1, float(e[0]), float(rho[0]), 1e11)
    assert np.shape(e_out1) == ()
    assert float(e_out1) > 0.0


def test_zero_dt_is_identity():
    n, e, rho = mixed_state(16, seed=4)
    net = ChemistryNetwork()
    n_out, e_out = net.advance(n, e, rho, 0.0)
    for s in SPECIES_NAMES:
        np.testing.assert_array_equal(n_out[s], n[s])
    np.testing.assert_array_equal(e_out, e)
    assert net.last_stats["substeps_total"] == 0


# ------------------------------------------------------------ stats plumbing
def test_advance_publishes_stats():
    n, e, rho = mixed_state(128, seed=6)
    net = ChemistryNetwork()
    net.advance(n, e, rho, 1.0e13, z=15.0)
    stats = net.last_stats
    assert stats["cells"] == 128
    assert stats["substeps_max"] == net.last_substeps >= 1
    assert stats["substeps_total"] >= stats["substeps_max"]
    assert 0.0 < stats["active_fraction_mean"] <= 1.0
    # compaction must actually retire cells on a mixed grid
    assert stats["substeps_total"] < stats["substeps_max"] * stats["cells"]


def test_chemistry_step_stats_aggregation():
    agg = ChemistryStepStats()
    agg.absorb({"cells": 100, "substeps_total": 500, "substeps_max": 9,
                "active_fraction_mean": 0.5})
    agg.absorb({"cells": 300, "substeps_total": 600, "substeps_max": 4,
                "active_fraction_mean": 0.25})
    agg.absorb(None)  # skipped task
    snap = agg.snapshot()
    assert snap["tasks"] == 2
    assert snap["cells"] == 400
    assert snap["substeps_total"] == 1100
    assert snap["substeps_max"] == 9
    assert snap["active_fraction_mean"] == pytest.approx(
        (0.5 * 100 + 0.25 * 300) / 400
    )
    agg.reset()
    assert agg.snapshot()["tasks"] == 0


def test_timers_add_stat_modes():
    from repro.perf.timers import ComponentTimers

    t = ComponentTimers()
    t.add_stat("chemistry", "substeps", 10, mode="sum")
    t.add_stat("chemistry", "substeps", 5, mode="sum")
    t.add_stat("chemistry", "max_substeps", 3, mode="max")
    t.add_stat("chemistry", "max_substeps", 7, mode="max")
    t.add_stat("chemistry", "active_fraction", 0.4, mode="set")
    t.add_stat("chemistry", "active_fraction", 0.2, mode="set")
    stats = t.section_stats("chemistry")
    assert stats == {"substeps": 15.0, "max_substeps": 7.0,
                     "active_fraction": 0.2}
    assert "chemistry.substeps" in t.report()
    with pytest.raises(ValueError):
        t.add_stat("chemistry", "x", 1.0, mode="bogus")
    t.reset()
    assert t.section_stats("chemistry") == {}


def test_telemetry_step_record_includes_chemistry_block():
    from repro.problems.collapse import PrimordialCollapse
    from repro.runtime.telemetry import step_record

    pc = PrimordialCollapse(
        n_root=8, max_level=1, amplitude_boost=4.0,
        mass_refine_factor=8.0, with_chemistry=True,
    )
    pc.initial_rebuild()
    dt = pc.evolver.advance_root_step(pc.code_time_of_redshift(99.0))
    assert dt is not None and dt > 0.0
    record = step_record(pc.evolver, step=1, dt=dt)
    chem = record["chemistry"]
    assert chem["tasks"] >= 1
    assert chem["cells"] >= 8**3
    assert chem["substeps_total"] >= chem["substeps_max"] >= 1
    assert 0.0 < chem["active_fraction_mean"] <= 1.0
    # round-trippable through JSON like every telemetry payload
    import json

    json.dumps(record)
