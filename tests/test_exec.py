"""Tests for the task-based execution engine (repro.exec).

The engine's core promise is bitwise determinism: serial, thread and
process backends, at any worker count, must produce byte-identical
hierarchies — fields, potentials, DoubleDouble clock words and particle
extended-precision word pairs.  These tests run real problems (a
self-gravitating refined collapse with particles, the Zel'dovich pancake,
a chemistry-enabled primordial collapse) under every backend and compare.
"""

import os

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.exec import (
    BACKENDS,
    ENV_BACKEND,
    ENV_WORKERS,
    ExecConfig,
    ExecutionEngine,
    WorkCalibrator,
    shm,
)
from repro.nbody.particles import ParticleSet
from repro.perf import ComponentTimers


def build_sim(backend=None, workers=None) -> Simulation:
    """Small self-gravitating collapse with refinement and particles."""
    sim = Simulation(SimulationConfig(
        n_root=8, self_gravity=True, max_level=1, refine_overdensity=3.0,
        g_code=2.0, cfl=0.3, exec_backend=backend, workers=workers,
    ))
    sim.set_density(lambda x, y, z: 1 + 10 * np.exp(
        -((x - .5) ** 2 + (y - .5) ** 2 + (z - .5) ** 2) / 0.01))
    sim.set_field("internal", lambda x, y, z: np.full_like(x, 0.05))
    rng = np.random.default_rng(3)
    sim.hierarchy.particles = ParticleSet.from_arrays(
        rng.random((20, 3)), 0.01 * rng.standard_normal((20, 3)),
        np.full(20, 1e-3))
    sim.initialize()
    return sim


def assert_hierarchies_identical(ha, hb):
    """Fields, phi, particle EPA word pairs and clock words, bit-exact."""
    assert ha.grids_per_level() == hb.grids_per_level()
    for ga, gb in zip(ha.all_grids(), hb.all_grids()):
        assert float(ga.time.hi) == float(gb.time.hi)
        assert float(ga.time.lo) == float(gb.time.lo)
        for name, arr in ga.fields.array_items():
            np.testing.assert_array_equal(arr, gb.fields[name], err_msg=name)
        if ga.phi is not None or gb.phi is not None:
            np.testing.assert_array_equal(ga.phi, gb.phi)
    pa, pb = ha.particles, hb.particles
    assert (pa is None) == (pb is None)
    if pa is not None:
        np.testing.assert_array_equal(pa.positions.hi, pb.positions.hi)
        np.testing.assert_array_equal(pa.positions.lo, pb.positions.lo)
        np.testing.assert_array_equal(pa.velocities, pb.velocities)
        np.testing.assert_array_equal(pa.masses, pb.masses)


VARIANTS = [("serial", 1), ("thread", 2), ("thread", 4), ("process", 2)]


# ------------------------------------------------------- backend equivalence
class TestBackendEquivalence:
    def test_simulation_bitwise_identical_across_backends(self):
        """Gravity + hydro + particles + refinement: every backend agrees."""
        t_end = 0.8  # far enough that 3 root steps never reach it
        reference = build_sim()
        for _ in range(3):
            reference.evolver.advance_root_step(t_end)
        for backend, workers in VARIANTS[1:]:
            sim = build_sim(backend=backend, workers=workers)
            assert sim.evolver.engine.config.backend == backend
            for _ in range(3):
                sim.evolver.advance_root_step(t_end)
            assert_hierarchies_identical(reference.hierarchy, sim.hierarchy)

    def test_zeldovich_bitwise_identical_across_backends(self):
        from repro.problems import ZeldovichPancake

        outputs = {}
        for backend, workers in [("serial", 1), ("thread", 2),
                                 ("process", 2)]:
            zp = ZeldovichPancake(n=8)
            cfg = ExecConfig(backend=backend, workers=workers)
            outputs[backend] = zp.run(z_end=25.0, exec_config=cfg)
        for backend in ("thread", "process"):
            np.testing.assert_array_equal(
                outputs["serial"]["density"], outputs[backend]["density"])
            np.testing.assert_array_equal(
                outputs["serial"]["velocity"], outputs[backend]["velocity"])

    def test_collapse_with_chemistry_identical_across_backends(self):
        """The chemistry network advance is also backend-independent."""
        from repro.problems import PrimordialCollapse

        def run(backend, workers):
            pc = PrimordialCollapse(
                n_root=8, max_level=1, amplitude_boost=4.0,
                mass_refine_factor=8.0, with_chemistry=True,
                exec_backend=backend, workers=workers)
            pc.initial_rebuild()
            pc.run_to_redshift(95.0, max_root_steps=2)
            return pc

        ref = run(None, None)
        for backend, workers in [("thread", 2), ("process", 2)]:
            other = run(backend, workers)
            assert_hierarchies_identical(ref.hierarchy, other.hierarchy)


# --------------------------------------------------- checkpoints and resume
class TestCheckpointResumeAcrossBackends:
    def test_resume_may_switch_backend(self, tmp_path):
        """run(6, serial) == run(3, serial) + resume(3 more, thread)."""
        t_end = 0.8
        dir_a, dir_b = str(tmp_path / "a"), str(tmp_path / "b")

        sim_a = build_sim()
        out_a = sim_a.make_controller(dir_a).run(t_end, max_root_steps=6)
        assert out_a["steps"] == 6

        sim_b = build_sim()
        sim_b.make_controller(dir_b).run(t_end, max_root_steps=3)

        sim_b2 = build_sim(backend="thread", workers=2)
        out = sim_b2.make_controller(dir_b).resume(max_root_steps=6)
        assert out["steps"] == 6
        assert_hierarchies_identical(sim_a.hierarchy, sim_b2.hierarchy)


# ------------------------------------------------------------- configuration
class TestExecConfig:
    @pytest.fixture()
    def clean_env(self, monkeypatch):
        """Neutralise the CI matrix env (REPRO_EXEC_BACKEND=thread ...)."""
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        monkeypatch.delenv(ENV_WORKERS, raising=False)

    def test_default_is_serial_single_worker(self, clean_env):
        cfg = ExecConfig.resolve()
        assert cfg.backend == "serial" and cfg.workers == 1

    def test_environment_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "thread")
        monkeypatch.setenv(ENV_WORKERS, "3")
        cfg = ExecConfig.resolve()
        assert cfg.backend == "thread" and cfg.workers == 3

    def test_explicit_args_beat_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "process")
        monkeypatch.setenv(ENV_WORKERS, "8")
        cfg = ExecConfig.resolve(backend="thread", workers=2)
        assert cfg.backend == "thread" and cfg.workers == 2

    def test_value_beats_everything(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "process")
        cfg = ExecConfig.resolve(ExecConfig(backend="serial"),
                                 backend="thread", workers=4)
        assert cfg.backend == "serial" and cfg.workers == 1

    def test_workers_without_backend_means_thread(self, clean_env):
        cfg = ExecConfig.resolve(workers=4)
        assert cfg.backend == "thread" and cfg.workers == 4

    def test_serial_forces_one_worker(self, clean_env):
        cfg = ExecConfig.resolve(backend="serial", workers=8)
        assert cfg.workers == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ExecConfig(backend="mpi")

    def test_dict_spelling(self):
        cfg = ExecConfig.resolve({"backend": "process", "workers": 2})
        assert cfg.backend == "process" and cfg.workers == 2

    def test_backends_tuple_is_exhaustive(self):
        assert BACKENDS == ("serial", "thread", "process")


# --------------------------------------------------------------- calibrator
class TestWorkCalibrator:
    def test_unmeasured_cost_is_none(self):
        cal = WorkCalibrator()

        class T:
            kind, level, n_cells = "hydro", 0, 512
        assert cal.cost(T()) is None

    def test_observe_then_cost(self):
        cal = WorkCalibrator()
        cal.observe("hydro", 0, 1000, 0.5)  # 0.5 ms/cell
        class T:
            kind, level, n_cells = "hydro", 0, 2000
        assert cal.cost(T()) == pytest.approx(1.0)

    def test_ema_blends_observations(self):
        cal = WorkCalibrator(alpha=0.5)
        cal.observe("hydro", 0, 100, 1.0)   # 0.01 s/cell
        cal.observe("hydro", 0, 100, 3.0)   # 0.03 s/cell
        assert cal.rate("hydro", 0) == pytest.approx(0.02)
        assert cal.samples[("hydro", 0)] == 2

    def test_finer_level_falls_back_to_coarser(self):
        cal = WorkCalibrator()
        cal.observe("chemistry", 0, 100, 1.0)
        assert cal.rate("chemistry", 3) == pytest.approx(0.01)

    def test_sterile_grid_cost_sums_kinds_with_substep_factor(self):
        cal = WorkCalibrator(refine_factor=2)
        cal.observe("hydro", 1, 100, 1.0)      # 0.01 s/cell
        cal.observe("chemistry", 1, 100, 2.0)  # 0.02 s/cell
        class Sterile:
            level, n_cells = 1, 1000
        # (0.01 + 0.02) * 1000 cells * 2^1 substeps
        assert cal.cost(Sterile()) == pytest.approx(60.0)

    def test_summary_reports_ns_per_cell(self):
        cal = WorkCalibrator()
        cal.observe("hydro", 0, 1000, 0.001)  # 1 us/cell = 1000 ns/cell
        s = cal.summary()
        assert s["hydro/L0"]["ns_per_cell"] == pytest.approx(1000.0)
        assert s["hydro/L0"]["samples"] == 1


# ------------------------------------------------------------- shared memory
class TestSharedMemoryCodec:
    def test_pack_attach_roundtrip_bitwise(self):
        rng = np.random.default_rng(11)
        arrays = {
            "a": rng.standard_normal((4, 5, 6)),
            "b": np.asfortranarray(rng.standard_normal((3, 3))),
            "c": np.arange(7, dtype=np.int64),
        }
        block, layout = shm.pack(arrays)
        try:
            attached, views = shm.attach(block.name, layout)
            try:
                for name, arr in arrays.items():
                    np.testing.assert_array_equal(views[name], arr)
                    assert views[name].dtype == arr.dtype
            finally:
                del views
                attached.close()
        finally:
            shm.release(block, unlink=True)

    def test_outputs_reserve_writable_space(self):
        arrays = {"x": np.ones((2, 2))}
        outputs = {"y": ((3, 2, 2), "<f8")}
        block, layout = shm.pack(arrays, outputs)
        try:
            views = shm.views_of(block, layout)
            views["y"][:] = 7.0
            fresh = shm.views_of(block, layout)
            np.testing.assert_array_equal(fresh["y"], np.full((3, 2, 2), 7.0))
            np.testing.assert_array_equal(fresh["x"], np.ones((2, 2)))
            del views, fresh
        finally:
            shm.release(block, unlink=True)


# ------------------------------------------------------------------- engine
class _FakeTask:
    """Minimal task: scheduler proxies + inline execution."""

    kind = "hydro"

    def __init__(self, grid_id, n_cells, level=0):
        self.grid_id = grid_id
        self.level = level
        self.n_cells = n_cells
        self.start_index = (grid_id, 0, 0)
        self.result = None
        self.ran = False

    def run_inline(self):
        self.ran = True
        self.result = self.grid_id * 2


class TestExecutionEngine:
    def test_serial_runs_inline_with_timer_attribution(self):
        eng = ExecutionEngine(ExecConfig(backend="serial"))
        timers = ComponentTimers()
        tasks = [_FakeTask(i, 100) for i in range(3)]
        report = eng.run(tasks, level=0, timers=timers)
        assert all(t.ran for t in tasks)
        assert report.inline_timed
        assert report.n_tasks == 3
        assert timers.counts["hydro"] == 3

    def test_thread_backend_runs_every_task(self):
        eng = ExecutionEngine(ExecConfig(backend="thread", workers=2))
        tasks = [_FakeTask(i, 100 * (i + 1)) for i in range(5)]
        report = eng.run(tasks, level=1)
        assert all(t.ran for t in tasks)
        assert report.n_tasks == 5
        assert report.busy_total > 0.0

    def test_small_dispatches_run_inline(self):
        eng = ExecutionEngine(
            ExecConfig(backend="thread", workers=2, min_parallel_tasks=4))
        report = eng.run([_FakeTask(0, 10)], timers=ComponentTimers())
        assert report.inline_timed  # below the parallel threshold
        assert list(report.worker_busy) == [0]  # never left the caller

    def test_plan_queues_covers_all_tasks_without_overlap(self):
        eng = ExecutionEngine(ExecConfig(backend="thread", workers=3))
        tasks = [_FakeTask(i, (i + 1) * 50) for i in range(10)]
        queues = eng.plan_queues(tasks)
        assert len(queues) == 3
        seen = [t.grid_id for q in queues for t in q]
        assert sorted(seen) == list(range(10))

    def test_plan_queues_uses_calibrated_costs(self):
        eng = ExecutionEngine(ExecConfig(backend="thread", workers=2))
        # make grid 0 "measured" to be enormously expensive: the greedy
        # schedule must isolate it on its own worker
        eng.calibrator.observe("hydro", 0, 100, 100.0)
        eng.calibrator.observe("hydro", 1, 100, 0.0001)
        big = _FakeTask(0, 1000, level=0)
        small = [_FakeTask(i, 1000, level=1) for i in range(1, 5)]
        queues = eng.plan_queues([big] + small)
        (big_queue,) = [q for q in queues if big in q]
        assert len(big_queue) == 1

    def test_step_snapshot_shape(self):
        eng = ExecutionEngine(ExecConfig(backend="thread", workers=2))
        eng.begin_root_step()
        eng.run([_FakeTask(i, 100) for i in range(4)], level=0)
        eng.run([_FakeTask(i, 100) for i in range(2)], level=1)
        snap = eng.step_snapshot()
        assert snap["backend"] == "thread" and snap["workers"] == 2
        assert snap["dispatches"] == 2 and snap["tasks"] == 6
        assert "0" in snap["imbalance"] and "1" in snap["imbalance"]
        assert 0.0 < snap["utilisation"] <= 1.0

    def test_calibrator_learns_from_dispatches(self):
        eng = ExecutionEngine(ExecConfig(backend="serial"))
        eng.run([_FakeTask(i, 100) for i in range(3)], level=0)
        assert eng.calibrator.rate("hydro", 0) is not None

    def test_environment_drives_evolver_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "thread")
        monkeypatch.setenv(ENV_WORKERS, "2")
        sim = build_sim()
        assert sim.evolver.engine.config.backend == "thread"
        assert sim.evolver.engine.config.workers == 2
