"""Tests for checkpoint save/restore (bit-exactness included)."""

import numpy as np
import pytest

from repro.amr import Grid, Hierarchy
from repro.io import (
    CheckpointError,
    checkpoint_info,
    load_hierarchy,
    save_hierarchy,
)
from repro.nbody.particles import ParticleSet
from repro.precision.doubledouble import DoubleDouble
from repro.precision.position import PositionDD


@pytest.fixture
def populated_hierarchy():
    rng = np.random.default_rng(0)
    h = Hierarchy(n_root=8, advected=["HI", "H2I"])
    root = h.root
    for name, arr in root.fields.array_items():
        arr[:] = rng.random(arr.shape)
    child = Grid(1, (4, 4, 4), (8, 8, 8), n_root=8)
    h.add_grid(child, root)
    for name, arr in child.fields.array_items():
        arr[:] = rng.random(arr.shape)
    child.phi[:] = rng.standard_normal(child.phi.shape)
    child.time = DoubleDouble(0.125, 1e-25)
    root.time = DoubleDouble(0.125, 1e-25)
    n_p = 50
    h.particles = ParticleSet(
        PositionDD(rng.random((n_p, 3)), 1e-20 * rng.random((n_p, 3))),
        rng.standard_normal((n_p, 3)),
        rng.random(n_p),
    )
    return h


class TestCheckpoint:
    def test_roundtrip_structure(self, populated_hierarchy, tmp_path):
        p = str(tmp_path / "dump.npz")
        save_hierarchy(populated_hierarchy, p)
        h2 = load_hierarchy(p)
        assert h2.grids_per_level() == populated_hierarchy.grids_per_level()
        assert h2.validate_nesting()
        assert h2.advected == ["HI", "H2I"]

    def test_roundtrip_fields_bitexact(self, populated_hierarchy, tmp_path):
        p = str(tmp_path / "dump.npz")
        save_hierarchy(populated_hierarchy, p)
        h2 = load_hierarchy(p)
        for g1, g2 in zip(populated_hierarchy.all_grids(), h2.all_grids()):
            for name, arr in g1.fields.array_items():
                np.testing.assert_array_equal(arr, g2.fields[name])
            np.testing.assert_array_equal(g1.phi, g2.phi)

    def test_roundtrip_epa_exact(self, populated_hierarchy, tmp_path):
        """Low words of dd times and particle positions must survive."""
        p = str(tmp_path / "dump.npz")
        save_hierarchy(populated_hierarchy, p)
        h2 = load_hierarchy(p)
        assert float(h2.root.time.lo) == 1e-25
        np.testing.assert_array_equal(
            h2.particles.positions.lo, populated_hierarchy.particles.positions.lo
        )

    def test_roundtrip_particles(self, populated_hierarchy, tmp_path):
        p = str(tmp_path / "dump.npz")
        save_hierarchy(populated_hierarchy, p)
        h2 = load_hierarchy(p)
        np.testing.assert_array_equal(
            h2.particles.velocities, populated_hierarchy.particles.velocities
        )
        np.testing.assert_array_equal(
            h2.particles.masses, populated_hierarchy.particles.masses
        )

    def test_info(self, populated_hierarchy, tmp_path):
        p = str(tmp_path / "dump.npz")
        save_hierarchy(populated_hierarchy, p)
        info = checkpoint_info(p)
        assert info["n_grids"] == 2
        assert info["grids_per_level"] == [1, 1]
        assert info["n_particles"] == 50
        assert info["time"] == 0.125

    def test_info_reports_hierarchy_wide_state(self, populated_hierarchy,
                                               tmp_path):
        """deepest level / finest dx / total cells, not just the root."""
        p = str(tmp_path / "dump.npz")
        save_hierarchy(populated_hierarchy, p)
        info = checkpoint_info(p)
        assert info["deepest_level"] == 1
        assert info["finest_dx"] == 1.0 / 16  # 8 root cells, refined once
        assert info["total_cells"] == 8**3 + 8**3
        assert info["sdr"] == 16.0
        assert info["format_version"] == 1

    def test_save_is_atomic(self, populated_hierarchy, tmp_path):
        """No temp debris, and a crash mid-save preserves the old dump."""
        p = str(tmp_path / "dump.npz")
        save_hierarchy(populated_hierarchy, p)
        assert sorted(x.name for x in tmp_path.iterdir()) == ["dump.npz"]
        # simulate a torn in-progress rewrite: the .tmp never replaces p
        with open(p + ".tmp", "wb") as fh:
            fh.write(b"garbage from a crashed writer")
        h2 = load_hierarchy(p)  # the published dump is untouched
        assert h2.grids_per_level() == [1, 1]

    def test_truncated_file_raises_checkpoint_error(
            self, populated_hierarchy, tmp_path):
        p = str(tmp_path / "dump.npz")
        save_hierarchy(populated_hierarchy, p)
        with open(p, "r+b") as fh:
            fh.truncate(120)
        with pytest.raises(CheckpointError):
            load_hierarchy(p)
        with pytest.raises(CheckpointError):
            checkpoint_info(p)

    def test_garbage_file_raises_checkpoint_error(self, tmp_path):
        p = str(tmp_path / "junk.npz")
        with open(p, "wb") as fh:
            fh.write(b"this is not a zip archive at all")
        with pytest.raises(CheckpointError):
            load_hierarchy(p)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_hierarchy(str(tmp_path / "nope.npz"))

    def test_io_timer_section(self, populated_hierarchy, tmp_path):
        from repro.perf import ComponentTimers
        from repro.perf.timers import SECTIONS

        assert "io" in SECTIONS
        timers = ComponentTimers()
        p = str(tmp_path / "dump.npz")
        save_hierarchy(populated_hierarchy, p, timers=timers)
        load_hierarchy(p, timers=timers)
        assert timers.totals["io"] > 0.0
        assert timers.counts["io"] == 2

    def test_restart_continues_evolution(self, tmp_path):
        """Save mid-run, restore, continue: the physics must keep working."""
        from repro.amr import HierarchyEvolver, RefinementCriteria
        from repro.amr.boundary import set_boundary_values
        from repro.hydro import PPMSolver

        h = Hierarchy(n_root=8)
        x, y, z = np.meshgrid(*h.root.cell_centres(), indexing="ij")
        h.root.fields["density"][h.root.interior] = (
            1 + 5 * np.exp(-((x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2) / 0.01)
        )
        set_boundary_values(h, 0)
        ev = HierarchyEvolver(h, PPMSolver(), cfl=0.3)
        ev.advance_to(0.01)
        p = str(tmp_path / "mid.npz")
        save_hierarchy(h, p)

        h2 = load_hierarchy(p)
        ev2 = HierarchyEvolver(h2, PPMSolver(), cfl=0.3)
        ev2.advance_to(0.02)
        assert float(h2.root.time) == pytest.approx(0.02)
        assert np.all(np.isfinite(h2.root.field_view("density")))

    def test_version_check(self, populated_hierarchy, tmp_path):
        import json

        p = str(tmp_path / "dump.npz")
        save_hierarchy(populated_hierarchy, p)
        # tamper with the version
        data = dict(np.load(p))
        manifest = json.loads(bytes(data["manifest"]).decode())
        manifest["format_version"] = 99
        data["manifest"] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8
        )
        np.savez_compressed(p, **data)
        with pytest.raises(ValueError):
            load_hierarchy(p)
