"""Tests for the Berger-Rigoutsos clusterer and prolongation/projection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.clustering import Box, cluster_flagged_cells, coverage_check
from repro.amr.interpolation import prolong_linear, prolong_region, time_interpolate
from repro.amr.projection import block_average


class TestClustering:
    def test_empty_flags(self):
        assert cluster_flagged_cells(np.zeros((8, 8, 8), dtype=bool)) == []

    def test_single_cell(self):
        flags = np.zeros((8, 8, 8), dtype=bool)
        flags[3, 4, 5] = True
        boxes = cluster_flagged_cells(flags)
        assert coverage_check(flags, boxes)
        assert len(boxes) == 1
        assert boxes[0].n_cells <= 8

    def test_full_block(self):
        flags = np.zeros((8, 8, 8), dtype=bool)
        flags[2:6, 2:6, 2:6] = True
        boxes = cluster_flagged_cells(flags)
        assert len(boxes) == 1
        assert boxes[0].lo == (2, 2, 2) and boxes[0].hi == (6, 6, 6)

    def test_two_separated_blobs_split(self):
        flags = np.zeros((16, 8, 8), dtype=bool)
        flags[1:3, 2:4, 2:4] = True
        flags[12:14, 2:4, 2:4] = True
        boxes = cluster_flagged_cells(flags)
        assert coverage_check(flags, boxes)
        assert len(boxes) == 2  # the signature hole splits them

    def test_l_shape_efficiency(self):
        flags = np.zeros((16, 16, 4), dtype=bool)
        flags[0:12, 0:4, :] = True
        flags[0:4, 4:12, :] = True
        boxes = cluster_flagged_cells(flags, efficiency=0.8)
        assert coverage_check(flags, boxes)
        covered = sum(b.n_cells for b in boxes)
        flagged = flags.sum()
        assert covered < 2.0 * flagged  # much better than one bounding box

    def test_efficiency_threshold_respected(self):
        rng = np.random.default_rng(0)
        flags = rng.random((16, 16, 16)) < 0.05
        boxes = cluster_flagged_cells(flags, efficiency=0.5, min_size=2)
        assert coverage_check(flags, boxes)

    def test_box_helpers(self):
        b = Box((1, 2, 3), (4, 6, 9))
        assert b.dims == (3, 4, 6)
        assert b.n_cells == 72
        s = b.shifted((10, 0, 0))
        assert s.lo == (11, 2, 3)

    @given(st.integers(0, 2**31 - 1), st.floats(0.01, 0.3))
    @settings(max_examples=25, deadline=None)
    def test_coverage_property(self, seed, density):
        rng = np.random.default_rng(seed)
        flags = rng.random((12, 12, 12)) < density
        boxes = cluster_flagged_cells(flags)
        assert coverage_check(flags, boxes)
        # boxes stay in bounds
        for b in boxes:
            assert all(l >= 0 for l in b.lo)
            assert all(h <= 12 for h in b.hi)
            assert all(h > l for l, h in zip(b.lo, b.hi))


class TestProlongation:
    def test_constant(self):
        c = np.full((4, 4, 4), 2.5)
        f = prolong_linear(c, 2)
        assert f.shape == (8, 8, 8)
        np.testing.assert_allclose(f, 2.5)

    def test_conservative(self):
        rng = np.random.default_rng(1)
        c = rng.random((6, 6, 6))
        f = prolong_linear(c, 2)
        back = block_average(f, 2)
        np.testing.assert_allclose(back, c, atol=1e-14)

    @pytest.mark.parametrize("r", [2, 4])
    def test_conservative_other_factors(self, r):
        rng = np.random.default_rng(2)
        c = rng.random((4, 4, 4))
        back = block_average(prolong_linear(c, r), r)
        np.testing.assert_allclose(back, c, atol=1e-14)

    def test_linear_profile_recovered(self):
        # interior of a linear ramp prolongs exactly
        x = np.arange(6)[:, None, None] * np.ones((1, 6, 6))
        f = prolong_linear(x, 2)
        # fine cell j sits at parent (j // 2) with offset +-1/4 parent cells:
        # value = j/2 - 1/4 on the linear ramp
        expected = np.arange(12)[:, None, None] / 2.0 - 0.25
        np.testing.assert_allclose(
            f[2:-2], np.broadcast_to(expected, (12, 12, 12))[2:-2], atol=1e-12
        )

    def test_r1_copy(self):
        c = np.random.default_rng(3).random((4, 4, 4))
        f = prolong_linear(c, 1)
        np.testing.assert_array_equal(f, c)
        f[0, 0, 0] = 99
        assert c[0, 0, 0] != 99

    def test_prolong_region_offsets(self):
        c = np.random.default_rng(4).random((6, 6, 6))
        full = prolong_linear(c, 2)
        sub = prolong_region(c, 2, (4, 4, 4), (3, 2, 5))
        np.testing.assert_array_equal(sub, full[3:7, 2:6, 5:9])

    def test_time_interpolate(self):
        old = np.zeros((2, 2, 2))
        new = np.ones((2, 2, 2))
        np.testing.assert_allclose(time_interpolate(old, new, 0.25), 0.25)
        np.testing.assert_allclose(time_interpolate(old, new, 1.5), 1.0)  # clipped


class TestBlockAverage:
    def test_mean(self):
        f = np.arange(8.0).reshape(2, 2, 2)
        c = block_average(f, 2)
        assert c.shape == (1, 1, 1)
        assert c[0, 0, 0] == f.mean()

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            block_average(np.zeros((3, 4, 4)), 2)
