"""Regression tests for the hot-path bugfixes:

* a particle drifting across a sibling face is advanced exactly once,
* the gravity sibling iteration detects convergence (early exit),
* parent->child time interpolation never extrapolates (frac clamped),
* a non-finite timestep falls back loudly, not to a silent magic 1.0.
"""

import warnings

import numpy as np
import pytest

from repro.amr import Grid, Hierarchy, HierarchyEvolver
from repro.amr.boundary import _time_fraction, set_boundary_values
from repro.amr.gravity import HierarchyGravity, _exchange_rim
from repro.hydro import PPMSolver
from repro.nbody.particles import ParticleSet
from repro.precision.doubledouble import DoubleDouble
from repro.precision.position import PositionDD


def _two_sibling_level(n_root=8):
    """Level 1 fully tiled by two face-sharing siblings (x-split halves)."""
    h = Hierarchy(n_root=n_root)
    n1 = 2 * n_root
    a = Grid(1, (0, 0, 0), (n1 // 2, n1, n1), n_root=n_root)
    b = Grid(1, (n1 // 2, 0, 0), (n1 // 2, n1, n1), n_root=n_root)
    h.add_grid(a, h.root)
    h.add_grid(b, h.root)
    return h, a, b


class TestParticleSingleAdvance:
    def test_cross_face_drift_advanced_once(self):
        """A particle whose drift carries it across the shared sibling face
        must receive exactly one kick-drift-kick, not one per grid."""
        h, a, b = _two_sibling_level()
        v = 1.0
        h.particles = ParticleSet(
            PositionDD(np.array([[0.49, 0.25, 0.25]])),
            np.array([[v, 0.0, 0.0]]),
            np.array([1.0]),
        )
        grav = HierarchyGravity(g_code=1.0, mean_density=1.0)
        ev = HierarchyEvolver(h, PPMSolver(), gravity=grav)

        calls = []
        orig = grav.particle_accelerations

        def spy(grid, acc_field, hi, lo):
            calls.append(grid.grid_id)
            return orig(grid, acc_field, hi, lo)

        grav.particle_accelerations = spy
        accel = {
            g.grid_id: np.zeros((3,) + g.shape_with_ghosts)
            for g in h.level_grids(1)
        }
        dt = 0.04
        ev._advance_particles(1, dt, a=1.0, adot=0.0, accel=accel)

        x = float(h.particles.positions.hi[0, 0] + h.particles.positions.lo[0, 0])
        assert x == pytest.approx(0.49 + v * dt, abs=1e-12)
        assert x > 0.5  # the drift really crossed the face
        # two half-kicks from exactly one grid
        assert len(calls) == 2
        assert calls[0] == calls[1] == a.grid_id
        np.testing.assert_allclose(h.particles.velocities[0], [v, 0.0, 0.0])

    def test_first_containing_grid_wins_on_overlap(self):
        """With overlapping siblings, assignment is unique (first wins)."""
        h = Hierarchy(n_root=8)
        a = Grid(1, (0, 0, 0), (10, 16, 16), n_root=8)   # overlaps b in x
        b = Grid(1, (6, 0, 0), (10, 16, 16), n_root=8)
        h.add_grid(a, h.root)
        h.add_grid(b, h.root)
        h.particles = ParticleSet(
            PositionDD(np.array([[0.45, 0.5, 0.5]])),  # inside both
            np.array([[0.0, 0.0, 0.0]]),
            np.array([1.0]),
        )
        grav = HierarchyGravity(g_code=1.0, mean_density=1.0)
        ev = HierarchyEvolver(h, PPMSolver(), gravity=grav)
        calls = []
        grav.particle_accelerations = (
            lambda grid, acc, hi, lo: (calls.append(grid.grid_id),
                                       np.zeros((hi.shape[0], 3)))[1]
        )
        accel = {
            g.grid_id: np.zeros((3,) + g.shape_with_ghosts)
            for g in h.level_grids(1)
        }
        ev._advance_particles(1, 0.01, a=1.0, adot=0.0, accel=accel)
        assert set(calls) == {a.grid_id}


class TestSiblingIterationConverges:
    def test_exchange_rim_reports_no_change(self):
        h, a, b = _two_sibling_level()
        rim = np.zeros(tuple(int(d) + 2 for d in a.dims))
        # b.phi is zeros: first copy changes nothing -> no progress
        assert _exchange_rim(a, b, rim) is False
        b.phi[...] = 1.0
        assert _exchange_rim(a, b, rim) is True   # values actually moved
        assert _exchange_rim(a, b, rim) is False  # second pass: settled

    def test_converged_exchange_exits_early(self):
        """Zero source + zero rims reach the fixpoint on pass one; the
        solver must stop there instead of burning every allowed pass."""
        h, a, b = _two_sibling_level()
        # uniform density == mean: the Poisson source vanishes identically
        grav = HierarchyGravity(g_code=1.0, mean_density=1.0,
                                sibling_iterations=5)
        grav.solve_level(h, 0)
        solves = []
        orig = grav.mg.solve

        def spy(src, dx, rim, **kwargs):
            solves.append(dx)
            return orig(src, dx, rim, **kwargs)

        grav.mg.solve = spy
        grav.solve_level(h, 1)
        # one pass over the two grids, then the unchanged exchange breaks
        assert len(solves) == 2, (
            f"{len(solves)} mg solves: the sibling iteration did not detect "
            "convergence"
        )


class TestTimeFractionClamp:
    def _parent_child(self):
        parent = Grid(0, (0, 0, 0), (8, 8, 8), n_root=8)
        parent.allocate()
        parent.save_old_state()
        parent.old_time = DoubleDouble(0.0)
        parent.time = DoubleDouble(1.0)
        child = Grid(1, (4, 4, 4), (8, 8, 8), n_root=8)
        return parent, child

    def test_overshoot_clamped_to_one(self):
        parent, child = self._parent_child()
        child.time = DoubleDouble(1.0 + 1e-9)  # last-subcycle overshoot
        assert _time_fraction(child, parent) == 1.0

    def test_undershoot_clamped_to_zero(self):
        parent, child = self._parent_child()
        child.time = DoubleDouble(-1e-9)
        assert _time_fraction(child, parent) == 0.0

    def test_interior_fraction_untouched(self):
        parent, child = self._parent_child()
        child.time = DoubleDouble(0.25)
        assert _time_fraction(child, parent) == pytest.approx(0.25)


class TestTimestepFallback:
    def _vacuum_evolver(self):
        h = Hierarchy(n_root=4)
        h.root.fields["internal"][:] = 0.0  # zero sound speed
        h.root.fields["energy"][:] = 0.0
        return HierarchyEvolver(h, PPMSolver())

    def test_falls_back_to_remaining_and_warns(self):
        ev = self._vacuum_evolver()
        with pytest.warns(RuntimeWarning, match="level 0"):
            dt = ev.compute_timestep(0, a=1.0, adot=0.0, remaining=0.125)
        assert dt == 0.125

    def test_expansion_constraint_bounds_vacuum_without_warning(self):
        """With a finite expansion timestep in the min, vacuum is already
        bounded — no fallback, no warning."""
        ev = self._vacuum_evolver()
        from repro.hydro.timestep import expansion_timestep

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            dt = ev.compute_timestep(0, a=1.0, adot=0.5, remaining=100.0)
        assert dt == pytest.approx(expansion_timestep(1.0, 0.5))

    def test_falls_back_to_unit_time_without_remaining(self):
        ev = self._vacuum_evolver()
        with pytest.warns(RuntimeWarning, match="level 0"):
            dt = ev.compute_timestep(0, a=1.0, adot=0.0)
        assert dt == 1.0

    def test_finite_timestep_does_not_warn(self):
        h = Hierarchy(n_root=4)  # default fields carry a finite sound speed
        ev = HierarchyEvolver(h, PPMSolver())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            dt = ev.compute_timestep(0, a=1.0, adot=0.0, remaining=1.0)
        assert np.isfinite(dt)
