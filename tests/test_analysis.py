"""Tests for profiles, slices/zoom and clump diagnostics."""

import numpy as np
import pytest

from repro.amr import Grid, Hierarchy
from repro.amr.boundary import set_boundary_values
from repro.analysis import (
    composite_slice,
    cooling_time,
    find_clumps,
    find_densest_point,
    freefall_time,
    inertia_tensor,
    radial_profiles,
    xray_luminosity,
    zoom_stack,
)
from repro.analysis.clumps import axis_ratios, two_body_relaxation_time
from repro.analysis.profiles import enclosed_mass_profile
from repro.analysis.projections import ascii_render


def _centrally_condensed(n_root=16, with_child=True):
    """Hierarchy with rho ~ 1 + A/(r^2+eps): peak at box centre."""
    h = Hierarchy(n_root=n_root)
    root = h.root
    x, y, z = np.meshgrid(*root.cell_centres(), indexing="ij")
    r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2
    root.fields["density"][root.interior] = 1.0 + 0.05 / (r2 + 1e-3)
    set_boundary_values(h, 0)
    if with_child:
        q = n_root // 4
        child = Grid(1, (2 * q, 2 * q, 2 * q) + np.array([q, q, q]), (2 * q,) * 3, n_root=n_root)
        # place child centred on the peak
        child = Grid(1, (n_root - q, n_root - q, n_root - q), (2 * q,) * 3, n_root=n_root)
        h.add_grid(child, root)
        xc, yc, zc = np.meshgrid(*child.cell_centres(), indexing="ij")
        r2c = (xc - 0.5) ** 2 + (yc - 0.5) ** 2 + (zc - 0.5) ** 2
        child.fields["density"][child.interior] = 1.0 + 0.05 / (r2c + 1e-3)
        set_boundary_values(h, 1)
    return h


class TestDensestPoint:
    def test_on_root(self):
        h = _centrally_condensed(with_child=False)
        p = find_densest_point(h)
        assert np.all(np.abs(p - 0.5) < 2.0 / 16)

    def test_prefers_finest(self):
        h = _centrally_condensed(with_child=True)
        p = find_densest_point(h)
        assert np.all(np.abs(p - 0.5) < 1.0 / 16)


class TestRadialProfiles:
    def test_density_decreases_outward(self):
        h = _centrally_condensed()
        prof = radial_profiles(h, nbins=10, rmax=0.4)
        rho = prof["density"]
        ok = np.isfinite(rho)
        assert np.all(np.diff(rho[ok]) <= 1e-6)

    def test_enclosed_mass_monotone(self):
        h = _centrally_condensed()
        prof = radial_profiles(h, nbins=10)
        m = prof["enclosed_gas_mass"]
        assert np.all(np.diff(m) >= -1e-15)

    def test_total_mass_recovered(self):
        h = _centrally_condensed(with_child=False)
        prof = radial_profiles(h, nbins=16, rmax=0.9)
        total = h.root.field_view("density").sum() * h.root.dx**3
        assert prof["enclosed_gas_mass"][-1] == pytest.approx(total, rel=0.02)

    def test_radial_velocity_sign(self):
        h = _centrally_condensed(with_child=False)
        root = h.root
        # uniform inflow toward the centre
        x, y, z = np.meshgrid(*root.cell_centres(), indexing="ij")
        r = np.sqrt((x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2) + 1e-10
        root.fields["vx"][root.interior] = -(x - 0.5) / r
        root.fields["vy"][root.interior] = -(y - 0.5) / r
        root.fields["vz"][root.interior] = -(z - 0.5) / r
        set_boundary_values(h, 0)
        prof = radial_profiles(h, centre=[0.5, 0.5, 0.5], nbins=8, rmax=0.4)
        vr = prof["radial_velocity"]
        assert np.all(vr[np.isfinite(vr)] < 0)

    def test_units_conversion(self):
        from repro.cosmology import CodeUnits, STANDARD_CDM

        units = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        h = _centrally_condensed(with_child=False)
        prof = radial_profiles(h, nbins=8, units=units, a=units.a_initial)
        assert "number_density" in prof and "temperature" in prof
        assert np.all(prof["temperature"][np.isfinite(prof["temperature"])] > 0)

    def test_species_fractions(self):
        h = Hierarchy(n_root=8, advected=["H2I", "HI"])
        root = h.root
        root.fields["HI"][:] = 0.7 * root.fields["density"]
        root.fields["H2I"][:] = 1e-4 * root.fields["density"]
        set_boundary_values(h, 0)
        prof = radial_profiles(h, centre=[0.5] * 3, nbins=6, species=True)
        f = prof["f_H2"][np.isfinite(prof["f_H2"])]
        np.testing.assert_allclose(f, 1e-4, rtol=1e-6)

    def test_enclosed_mass_profile_fn(self):
        h = _centrally_condensed(with_child=False)
        r, m = enclosed_mass_profile(h, centre=[0.5] * 3)
        assert np.all(np.diff(m) >= 0)


class TestSlicesAndZoom:
    def test_composite_slice_uses_finest(self):
        h = _centrally_condensed(with_child=True)
        child = h.level_grids(1)[0]
        child.fields["density"][child.interior] = 99.0
        img = composite_slice(h, resolution=32)
        assert np.nanmax(img) == 99.0

    def test_slice_shape_and_finite(self):
        h = _centrally_condensed(with_child=False)
        img = composite_slice(h, resolution=16)
        assert img.shape == (16, 16)
        assert np.all(np.isfinite(img))

    def test_zoom_stack_magnifies(self):
        h = _centrally_condensed()
        frames = zoom_stack(h, n_frames=3, zoom_factor=10.0, resolution=16)
        assert len(frames) == 3
        widths = [f["width"] for f in frames]
        assert widths[1] == pytest.approx(widths[0] / 10)
        # deeper zooms concentrate on the peak: max stays, min rises
        assert frames[-1]["log10_min"] >= frames[0]["log10_min"]

    def test_ascii_render(self):
        img = np.array([[1.0, 10.0], [100.0, 1000.0]])
        s = ascii_render(img)
        assert len(s.splitlines()) == 2


class TestClumps:
    def test_find_clumps(self):
        h = _centrally_condensed(with_child=False)
        clumps = find_clumps(h, overdensity=5.0)
        assert len(clumps) == 1
        assert np.all(np.abs(clumps[0]["position"] - 0.5) < 0.15)

    def test_no_clumps_when_uniform(self):
        h = Hierarchy(n_root=8)
        assert find_clumps(h, overdensity=5.0) == []

    def test_freefall_time_scaling(self):
        assert freefall_time(1e-20) / freefall_time(1e-18) == pytest.approx(10.0)

    def test_freefall_magnitude(self):
        # rho ~ 1e-24 g/cc (n~1 cm^-3): t_ff ~ 50 Myr
        from repro import constants as const

        t = freefall_time(1e-24) / const.MEGAYEAR
        assert 30 < t < 100

    def test_cooling_time_positive(self):
        from repro.chemistry import primordial_initial_fractions, SPECIES
        from repro.chemistry.species import SPECIES_NAMES
        from repro import constants as const

        fr = primordial_initial_fractions(x_e=1e-2, f_h2=1e-4)
        rho = 100 * const.HYDROGEN_MASS
        n = {s: np.atleast_1d(fr[s] * rho / (SPECIES[s].mass_amu * const.HYDROGEN_MASS))
             for s in SPECIES_NAMES}
        t = cooling_time(n, np.atleast_1d(1000.0), rho, z=20.0)
        assert np.all(t > 0)

    def test_two_body_relaxation(self):
        assert two_body_relaxation_time(int(1e6), 1.0) > 1e3

    def test_inertia_tensor_sphere(self):
        rng = np.random.default_rng(0)
        pos = rng.standard_normal((5000, 3))
        t = inertia_tensor(pos, np.ones(5000))
        b_a, c_a = axis_ratios(t)
        assert 0.9 < b_a <= 1.001
        assert 0.9 < c_a <= 1.001

    def test_inertia_tensor_flattened(self):
        rng = np.random.default_rng(1)
        pos = rng.standard_normal((5000, 3)) * np.array([1.0, 1.0, 0.1])
        b_a, c_a = axis_ratios(inertia_tensor(pos, np.ones(5000)))
        assert c_a < 0.2 and b_a > 0.9

    def test_xray_luminosity_scales(self):
        l1 = xray_luminosity(1.0, 1.0, 1e7, 1e60)
        l2 = xray_luminosity(2.0, 2.0, 1e7, 1e60)
        assert l2 == pytest.approx(4 * l1)
