"""Topology-cache behaviour: epoch invalidation, link correctness, and the
cached consumers producing the same answers as direct scans."""

import numpy as np
import pytest

from repro.amr import Grid, Hierarchy, build_sibling_map
from repro.amr.boundary import copy_from_siblings, set_boundary_values
from repro.nbody.particles import ParticleSet
from repro.perf import ComponentTimers
from repro.precision.position import PositionDD


def _grid(level, start, dims, n_root=8):
    return Grid(level, start, dims, n_root=n_root)


class TestSiblingMap:
    def test_links_match_direct_scan(self):
        h = Hierarchy(n_root=8)
        a = _grid(1, (0, 0, 0), (4, 4, 4))
        b = _grid(1, (4, 0, 0), (4, 4, 4))
        c = _grid(1, (12, 12, 12), (4, 4, 4))
        for g in (a, b, c):
            h.add_grid(g, h.root)
        smap = h.sibling_map(1)
        assert [l.sibling for l in smap[a.grid_id]] == [b]
        assert [l.sibling for l in smap[b.grid_id]] == [a]
        assert smap[c.grid_id] == []

    def test_ghost_slices_equal_legacy_copy(self):
        """copy via precomputed links == the per-call slice arithmetic."""
        h = Hierarchy(n_root=8)
        a = _grid(1, (2, 2, 2), (4, 4, 4))
        b = _grid(1, (6, 2, 2), (6, 4, 4))
        h.add_grid(a, h.root)
        h.add_grid(b, h.root)
        rng = np.random.default_rng(1)
        for g in (a, b):
            for name, arr in g.fields.array_items():
                arr[...] = rng.random(arr.shape)
            g.phi[...] = rng.random(g.phi.shape)

        before = {k: v.copy() for k, v in a.fields.array_items()}
        copy_from_siblings(a, [b])
        legacy_result = {k: v.copy() for k, v in a.fields.array_items()}

        # reset and do it through the cached links
        for name in before:
            a.fields[name][...] = before[name]
        smap = h.sibling_map(1)
        from repro.amr.boundary import copy_from_sibling_links

        copy_from_sibling_links(a, smap[a.grid_id])
        for name in before:
            np.testing.assert_array_equal(a.fields[name], legacy_result[name])

    def test_rim_slices_only_when_rim_touches(self):
        h = Hierarchy(n_root=8)
        a = _grid(1, (0, 0, 0), (4, 4, 4))
        b = _grid(1, (4, 0, 0), (4, 4, 4))   # face neighbour: rim overlap
        c = _grid(1, (6, 4, 4), (4, 4, 4))   # within ghosts (3) but not rim
        for g in (a, b, c):
            h.add_grid(g, h.root)
        smap = h.sibling_map(1)
        by_sib = {l.sibling: l for l in smap[a.grid_id]}
        assert by_sib[b].rim_dst is not None
        assert by_sib[c].rim_dst is None

    def test_build_matches_bruteforce_random(self):
        rng = np.random.default_rng(3)
        h = Hierarchy(n_root=16)
        grids = []
        for _ in range(30):
            start = rng.integers(0, 28, size=3)
            dims = rng.integers(2, 5, size=3)
            hi = np.minimum(start + dims, 32)
            g = Grid(1, tuple(start), tuple(hi - start), n_root=16)
            h.add_grid(g, h.root)
            grids.append(g)
        smap = build_sibling_map(grids, h.nghost)
        for g in grids:
            expect = {
                o.grid_id for o in grids
                if o is not g and g.ghost_overlap_with(o) is not None
            }
            got = {l.sibling.grid_id for l in smap[g.grid_id]}
            assert got == expect


class TestEpochInvalidation:
    def test_add_grid_bumps_epoch_and_refreshes_siblings(self):
        h = Hierarchy(n_root=8)
        a = _grid(1, (0, 0, 0), (4, 4, 4))
        h.add_grid(a, h.root)
        e0 = h.topology_epoch
        assert h.siblings(a) == []  # build + cache the level-1 map
        b = _grid(1, (4, 0, 0), (4, 4, 4))
        h.add_grid(b, h.root)
        assert h.topology_epoch > e0
        assert h.siblings(a) == [b]  # stale map must not be served

    def test_remove_level_grids_bumps_epoch_and_refreshes(self):
        h = Hierarchy(n_root=8)
        a = _grid(1, (0, 0, 0), (4, 4, 4))
        b = _grid(1, (4, 0, 0), (4, 4, 4))
        h.add_grid(a, h.root)
        h.add_grid(b, h.root)
        assert h.siblings(a) == [b]
        e0 = h.topology_epoch
        h.remove_level_grids(1)
        assert h.topology_epoch > e0
        assert h.sibling_map(1) == {}

    def test_same_epoch_reuses_map_object(self):
        h = Hierarchy(n_root=8)
        h.add_grid(_grid(1, (0, 0, 0), (4, 4, 4)), h.root)
        h.add_grid(_grid(1, (4, 0, 0), (4, 4, 4)), h.root)
        m1 = h.sibling_map(1)
        m2 = h.sibling_map(1)
        assert m1 is m2

    def test_cache_disabled_rebuilds_every_call(self):
        h = Hierarchy(n_root=8)
        h.add_grid(_grid(1, (0, 0, 0), (4, 4, 4)), h.root)
        h.topology_cache_enabled = False
        m1 = h.sibling_map(1)
        m2 = h.sibling_map(1)
        assert m1 is not m2

    def test_particle_levels_cached_and_invalidated(self):
        h = Hierarchy(n_root=8)
        child = _grid(1, (4, 4, 4), (8, 8, 8))
        h.add_grid(child, h.root)
        h.particles = ParticleSet(
            PositionDD(np.array([[0.5, 0.5, 0.5], [0.1, 0.1, 0.1]])),
            np.zeros((2, 3)), np.ones(2),
        )
        lv1 = h.finest_level_of_particles()
        np.testing.assert_array_equal(lv1, [1, 0])
        assert h.finest_level_of_particles() is lv1  # served from cache
        assert not lv1.flags.writeable

        # structural change invalidates
        h.remove_level_grids(1)
        np.testing.assert_array_equal(h.finest_level_of_particles(), [0, 0])

        # particle motion invalidates
        h.add_grid(_grid(1, (4, 4, 4), (8, 8, 8)), h.root)
        lv2 = h.finest_level_of_particles()
        h.notify_particles_moved()
        assert h.finest_level_of_particles() is not lv2

    def test_particle_replacement_invalidates(self):
        h = Hierarchy(n_root=8)
        h.particles = ParticleSet(
            PositionDD(np.array([[0.5, 0.5, 0.5]])), np.zeros((1, 3)), np.ones(1)
        )
        lv = h.finest_level_of_particles()
        assert len(lv) == 1
        h.particles = ParticleSet.empty()
        assert len(h.finest_level_of_particles()) == 0


class TestTimersSection:
    def test_topology_section_registers(self):
        h = Hierarchy(n_root=8)
        h.timers = ComponentTimers()
        h.add_grid(_grid(1, (0, 0, 0), (8, 8, 8)), h.root)
        set_boundary_values(h, 1)
        assert h.timers.totals.get("topology", 0.0) > 0.0
        assert h.timers.counts["topology"] >= 1


class TestConsumersAgree:
    def test_set_boundary_values_same_with_and_without_cache(self):
        def build():
            h = Hierarchy(n_root=8)
            rng = np.random.default_rng(7)
            h.root.fields["density"][h.root.interior] = 1.0 + rng.random((8, 8, 8))
            set_boundary_values(h, 0)
            a = _grid(1, (2, 2, 2), (6, 6, 6))
            b = _grid(1, (8, 2, 2), (4, 6, 6))
            h.add_grid(a, h.root)
            h.add_grid(b, h.root)
            from repro.amr.rebuild import _fill_new_grid
            _fill_new_grid(a, h.root, [])
            _fill_new_grid(b, h.root, [])
            a.fields["density"][a.interior] += 0.5
            b.fields["density"][b.interior] += 0.25
            return h

        h1, h2 = build(), build()
        h2.topology_cache_enabled = False
        set_boundary_values(h1, 1)
        set_boundary_values(h2, 1)
        for g1, g2 in zip(h1.level_grids(1), h2.level_grids(1)):
            for name, arr in g1.fields.array_items():
                np.testing.assert_array_equal(arr, g2.fields[name])
