"""Tests for the fault-tolerant run-control subsystem (repro.runtime)."""

import json
import os
import signal

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.io import CheckpointError, load_hierarchy
from repro.nbody.particles import ParticleSet
from repro.runtime import (
    CheckpointPolicy,
    RecoveryPolicy,
    RunFailedError,
    RunState,
    Watchdog,
    read_events,
    summarise,
    telemetry_path,
)
from repro.runtime.recovery import NonFiniteStateError


def build_sim() -> Simulation:
    """A small self-gravitating collapse with refinement and particles."""
    sim = Simulation(SimulationConfig(
        n_root=8, self_gravity=True, max_level=1, refine_overdensity=3.0,
        g_code=2.0, cfl=0.3,
    ))
    sim.set_density(lambda x, y, z: 1 + 10 * np.exp(
        -((x - .5) ** 2 + (y - .5) ** 2 + (z - .5) ** 2) / 0.01))
    sim.set_field("internal", lambda x, y, z: np.full_like(x, 0.05))
    rng = np.random.default_rng(3)
    sim.hierarchy.particles = ParticleSet.from_arrays(
        rng.random((20, 3)), 0.01 * rng.standard_normal((20, 3)),
        np.full(20, 1e-3))
    sim.initialize()
    return sim


T_END = 0.8  # far enough that 6 root steps never reach it


def assert_hierarchies_identical(ha, hb):
    """Fields, phi, particle EPA word pairs and per-grid times, bit-exact."""
    assert ha.grids_per_level() == hb.grids_per_level()
    for ga, gb in zip(ha.all_grids(), hb.all_grids()):
        assert float(ga.time.hi) == float(gb.time.hi)
        assert float(ga.time.lo) == float(gb.time.lo)
        for name, arr in ga.fields.array_items():
            np.testing.assert_array_equal(arr, gb.fields[name], err_msg=name)
        np.testing.assert_array_equal(ga.phi, gb.phi)
    np.testing.assert_array_equal(
        ha.particles.positions.hi, hb.particles.positions.hi)
    np.testing.assert_array_equal(
        ha.particles.positions.lo, hb.particles.positions.lo)
    np.testing.assert_array_equal(
        ha.particles.velocities, hb.particles.velocities)
    np.testing.assert_array_equal(ha.particles.masses, hb.particles.masses)


class TestResumeBitExact:
    def test_run_resume_matches_straight_run(self, tmp_path):
        """run(N+M) == run(N) -> checkpoint -> resume(M), bit for bit."""
        n, total = 3, 6
        dir_a, dir_b = str(tmp_path / "a"), str(tmp_path / "b")

        sim_a = build_sim()
        assert sim_a.hierarchy.max_level == 1  # refinement is active
        out_a = sim_a.make_controller(dir_a).run(T_END, max_root_steps=total)
        assert out_a["status"] == "max_steps" and out_a["steps"] == total

        sim_b = build_sim()
        out_b = sim_b.make_controller(dir_b).run(T_END, max_root_steps=n)
        assert out_b["steps"] == n

        sim_b2 = build_sim()  # a fresh process would rebuild the problem too
        out_b2 = sim_b2.make_controller(dir_b).resume(max_root_steps=total)
        assert out_b2["steps"] == total

        assert_hierarchies_identical(sim_a.hierarchy, sim_b2.hierarchy)

    def test_resume_restores_run_state(self, tmp_path):
        run_dir = str(tmp_path / "r")
        sim = build_sim()
        sim.evolver.step_counter[0] = 0
        sim.make_controller(run_dir).run(T_END, max_root_steps=2)
        counters = dict(sim.evolver.step_counter)

        sim2 = build_sim()
        ctl2 = sim2.make_controller(run_dir)
        ctl2.resume(max_root_steps=2)  # already there: no extra steps
        assert dict(sim2.evolver.step_counter) == counters
        assert ctl2.step == 2
        assert sim2.evolver.cfl == sim.evolver.cfl


class TestCheckpointRotation:
    def test_keep_count_honoured(self, tmp_path):
        run_dir = str(tmp_path / "rot")
        sim = build_sim()
        policy = CheckpointPolicy(every_steps=1, keep=2)
        sim.make_controller(run_dir, policy=policy).run(
            T_END, max_root_steps=5)
        pairs = CheckpointPolicy.list_checkpoints(run_dir)
        assert len(pairs) == 2
        assert [p[0] for p in pairs] == [4, 5]  # newest survive
        # every surviving checkpoint is loadable
        for _, npz, state in pairs:
            load_hierarchy(npz)
            RunState.load(state)

    def test_no_temp_files_left(self, tmp_path):
        run_dir = str(tmp_path / "tmpfiles")
        sim = build_sim()
        sim.make_controller(run_dir).run(T_END, max_root_steps=2)
        assert not [n for n in os.listdir(run_dir) if n.endswith(".tmp")]


class TestCrashRecovery:
    def test_watchdog_rolls_back_and_retries(self, tmp_path):
        run_dir = str(tmp_path / "wd")
        sim = build_sim()
        poisoned = []

        def poison(ctl):
            if ctl.step == 2 and not poisoned:
                poisoned.append(True)
                ctl.hierarchy.root.fields["density"][5, 5, 5] = np.nan

        ctl = sim.make_controller(
            run_dir, pre_step=poison,
            policy=CheckpointPolicy(every_steps=1, keep=10))
        with pytest.warns(RuntimeWarning):
            out = ctl.run(T_END, max_root_steps=5)
        assert out["status"] == "max_steps"
        assert out["recoveries"] == 1
        assert sim.evolver.cfl == pytest.approx(0.15)  # reduced from 0.3
        for g in sim.hierarchy.all_grids():
            assert np.all(np.isfinite(g.fields["density"]))
        events = read_events(telemetry_path(run_dir))
        rec = [e for e in events if e["event"] == "recovery"]
        assert len(rec) == 1
        assert rec[0]["rollback_step"] == 2
        # the poisoned density is caught either by the strict gravity solve
        # (defense ladder on, the default) or by the end-of-step watchdog
        assert ("density" in rec[0]["reason"]
                or "multigrid" in rec[0]["reason"])

    def test_retries_exhausted_raises(self, tmp_path):
        run_dir = str(tmp_path / "fail")
        sim = build_sim()

        def always_poison(ctl):
            ctl.hierarchy.root.fields["density"][5, 5, 5] = np.nan

        ctl = sim.make_controller(
            run_dir, pre_step=always_poison,
            recovery=RecoveryPolicy(max_retries=2),
            policy=CheckpointPolicy(every_steps=1, keep=5))
        with pytest.warns(RuntimeWarning):
            with pytest.raises(RunFailedError):
                ctl.run(T_END, max_root_steps=5)
        events = read_events(telemetry_path(run_dir))
        assert events[-1]["event"] == "failed"
        # the latest checkpoint on disk still loads after the failure
        step, npz, state = CheckpointPolicy.latest(run_dir)
        load_hierarchy(npz)

    def test_corrupt_latest_falls_back_to_older(self, tmp_path):
        run_dir = str(tmp_path / "fallback")
        sim = build_sim()
        sim.make_controller(
            run_dir, policy=CheckpointPolicy(every_steps=1, keep=10)
        ).run(T_END, max_root_steps=3)
        step, npz, _ = CheckpointPolicy.latest(run_dir)
        with open(npz, "r+b") as fh:  # truncate the newest dump
            fh.truncate(100)
        sim2 = build_sim()
        ctl2 = sim2.make_controller(run_dir)
        ctl2.resume(max_root_steps=3)
        assert ctl2.step == 3  # re-ran the lost step from the older pair

    def test_watchdog_flags_nonfinite(self):
        sim = build_sim()
        Watchdog().check(sim.hierarchy, 0.1)
        with pytest.raises(NonFiniteStateError):
            Watchdog().check(sim.hierarchy, float("nan"))
        sim.hierarchy.root.fields["energy"][4, 4, 4] = np.inf
        with pytest.raises(NonFiniteStateError):
            Watchdog().check(sim.hierarchy, 0.1)


class TestSignalDrain:
    def test_sigterm_checkpoints_then_exits(self, tmp_path):
        run_dir = str(tmp_path / "sig")
        sim = build_sim()

        def send_term(ctl):
            if ctl.step == 2:
                os.kill(os.getpid(), signal.SIGTERM)

        ctl = sim.make_controller(
            run_dir, pre_step=send_term,
            policy=CheckpointPolicy(every_steps=100, keep=3))
        out = ctl.run(T_END, max_root_steps=10)
        assert out["status"] == "interrupted"
        assert out["signal"] == "SIGTERM"
        # the drain checkpoint is at the interrupted step and loads cleanly
        step, npz, state_path = CheckpointPolicy.latest(run_dir)
        assert step == out["steps"]
        load_hierarchy(npz)
        # a resumed run picks up exactly there and completes the budget
        sim2 = build_sim()
        out2 = sim2.make_controller(run_dir).resume(max_root_steps=5)
        assert out2["status"] == "max_steps"
        assert out2["steps"] == 5
        events = read_events(telemetry_path(run_dir))
        kinds = [e["event"] for e in events]
        assert "interrupted" in kinds and "resume" in kinds


class TestTelemetry:
    def test_one_step_record_per_root_step(self, tmp_path):
        run_dir = str(tmp_path / "tel")
        sim = build_sim()
        out = sim.make_controller(run_dir).run(T_END, max_root_steps=4)
        events = read_events(telemetry_path(run_dir))
        steps = [e for e in events if e["event"] == "step"]
        assert len(steps) == out["steps"] == 4
        for i, e in enumerate(steps, start=1):
            assert e["step"] == i
            assert e["dt"] > 0 and np.isfinite(e["t"])
            assert e["a"] == pytest.approx(1.0)  # static clock
            assert sum(l["grids"] for l in e["levels"]) >= 1
            assert e["max_density"] > 1.0
            # serial fractions partition wall time exactly; parallel
            # backends attribute CPU-seconds summed across workers, so
            # their fractions may legitimately exceed 1 (see EXECUTOR.md)
            if e.get("exec", {}).get("backend", "serial") == "serial":
                assert abs(sum(e["timers"].values()) - 1.0) < 1e-4
            else:
                assert sum(e["timers"].values()) >= 1.0 - 1e-4
            assert "io" in e["timers"]  # checkpoint cost is attributed

    def test_every_line_is_valid_json(self, tmp_path):
        run_dir = str(tmp_path / "jsonl")
        sim = build_sim()
        sim.make_controller(run_dir).run(T_END, max_root_steps=3)
        with open(telemetry_path(run_dir)) as fh:
            for line in fh:
                json.loads(line)

    def test_summarise(self, tmp_path):
        run_dir = str(tmp_path / "sum")
        sim = build_sim()
        sim.make_controller(
            run_dir, policy=CheckpointPolicy(every_steps=2, keep=5)
        ).run(T_END, max_root_steps=4)
        s = summarise(run_dir)
        assert s["steps"] == 4
        assert s["checkpoints"] >= 3  # step 0, steps 2 & 4, final
        assert s["recoveries"] == 0
        assert s["lifecycle"][0] == "start"
        assert s["lifecycle"][-1] == "finish"
        assert s["grids"] >= 1 and s["cells"] >= 8 ** 3

    def test_torn_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"event": "step", "step": 1}) + "\n")
            fh.write('{"event": "step", "ste')  # crash mid-write
        events = read_events(path)
        assert len(events) == 1


class TestRunStateRoundtrip:
    def test_rng_state_roundtrip(self, tmp_path):
        np.random.seed(1234)
        np.random.random(7)  # advance the stream
        sim = build_sim()
        state = RunState.capture(sim.evolver, step=3, t_end=1.0)
        expected = np.random.random(5)  # consumes the stream...
        path = str(tmp_path / "state.json")
        state.save(path)
        restored = RunState.load(path)
        from repro.runtime import restore_rng_state
        restore_rng_state(restored.rng_state)  # ...and rewinds it
        np.testing.assert_array_equal(np.random.random(5), expected)
        assert restored.step == 3
        assert restored.t_hi == float(sim.hierarchy.root.time.hi)

    def test_level_times_word_pairs(self, tmp_path):
        from repro.precision.doubledouble import DoubleDouble

        sim = build_sim()
        sim.hierarchy.root.time = DoubleDouble(0.25, 3e-20)
        state = RunState.capture(sim.evolver)
        root_entry = state.level_times[0]
        assert root_entry["time_hi"] == 0.25
        assert root_entry["time_lo"] == 3e-20
        path = str(tmp_path / "state.json")
        state.save(path)
        assert RunState.load(path).level_times[0]["time_lo"] == 3e-20


class TestSimulationWiring:
    def test_run_controlled_reports_both_summaries(self, tmp_path):
        sim = build_sim()
        out = sim.run_controlled(T_END, str(tmp_path / "wired"),
                                 max_root_steps=2)
        assert out["status"] == "max_steps"
        assert out["n_grids"] == sim.hierarchy.n_grids
        assert "component_fractions" in out

    def test_resume_with_no_checkpoints_raises(self, tmp_path):
        sim = build_sim()
        with pytest.raises(CheckpointError):
            sim.make_controller(str(tmp_path / "empty")).resume()
