"""Tests for particles, CIC, and the leapfrog integrator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gravity import acceleration_from_potential, gravity_source, solve_periodic
from repro.nbody import ParticleSet, cic_deposit, cic_gather, drift, kick, kick_drift_kick
from repro.precision.position import PositionDD


def _random_particles(n, seed=0, vmax=0.1):
    rng = np.random.default_rng(seed)
    pos = PositionDD(rng.random((n, 3)))
    vel = vmax * rng.standard_normal((n, 3))
    mass = rng.random(n) + 0.5
    return ParticleSet(pos, vel, mass)


class TestParticleSet:
    def test_construction_and_len(self):
        p = _random_particles(10)
        assert len(p) == 10
        assert p.total_mass > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParticleSet(PositionDD(np.zeros((3, 3))), np.zeros((2, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            ParticleSet(PositionDD(np.zeros((3, 3))), np.zeros((3, 3)), np.zeros(4))

    def test_select_and_concat(self):
        p = _random_particles(10)
        a = p.select(np.arange(4))
        b = p.select(np.arange(4, 10))
        c = a.concatenated(b)
        assert len(c) == 10
        np.testing.assert_array_equal(np.sort(c.ids), np.arange(10))

    def test_in_region(self):
        p = ParticleSet(PositionDD(np.array([[0.1, 0.1, 0.1], [0.9, 0.9, 0.9]])),
                        np.zeros((2, 3)), np.ones(2))
        mask = p.in_region([0.0, 0.0, 0.0], [0.5, 0.5, 0.5])
        np.testing.assert_array_equal(mask, [True, False])

    def test_offsets_from(self):
        p = ParticleSet(PositionDD(np.array([[0.5, 0.5, 0.5]])), np.zeros((1, 3)), np.ones(1))
        off = p.offsets_from(np.array([0.25, 0.25, 0.25]))
        np.testing.assert_allclose(off, [[0.25, 0.25, 0.25]])

    def test_empty(self):
        p = ParticleSet.empty()
        assert len(p) == 0
        assert p.total_mass == 0.0


class TestCIC:
    def test_mass_conservation_periodic(self):
        p = _random_particles(500, seed=1)
        n = 8
        dx = 1.0 / n
        rho = cic_deposit(p.positions.hi, p.masses, (n, n, n), dx)
        assert np.isclose(rho.sum() * dx**3, p.total_mass, rtol=1e-12)

    def test_particle_at_cell_centre(self):
        n = 8
        dx = 1.0 / n
        pos = np.array([[(3 + 0.5) * dx, (4 + 0.5) * dx, (5 + 0.5) * dx]])
        rho = cic_deposit(pos, np.array([2.0]), (n, n, n), dx)
        assert np.isclose(rho[3, 4, 5], 2.0 / dx**3)
        assert np.isclose(rho.sum() * dx**3, 2.0)

    def test_particle_between_cells_splits_mass(self):
        n = 8
        dx = 1.0 / n
        pos = np.array([[4 * dx, (4 + 0.5) * dx, (4 + 0.5) * dx]])  # on x-face
        rho = cic_deposit(pos, np.array([1.0]), (n, n, n), dx)
        assert np.isclose(rho[3, 4, 4], 0.5 / dx**3)
        assert np.isclose(rho[4, 4, 4], 0.5 / dx**3)

    def test_periodic_wrap(self):
        n = 4
        dx = 1.0 / n
        pos = np.array([[0.01 * dx, 0.5 * dx, 0.5 * dx]])  # near x=0 face
        rho = cic_deposit(pos, np.array([1.0]), (n, n, n), dx)
        assert np.isclose(rho.sum() * dx**3, 1.0)
        assert rho[n - 1, 0, 0] > 0  # wraps to the far side

    def test_nonperiodic_drops_outside(self):
        n = 4
        dx = 1.0 / n
        pos = np.array([[-0.5, 0.5, 0.5], [0.5, 0.5, 0.5]])
        rho = cic_deposit(pos, np.ones(2), (n, n, n), dx, periodic=False)
        assert np.isclose(rho.sum() * dx**3, 1.0)

    def test_gather_constant_field(self):
        n = 8
        field = np.ones((3, n, n, n)) * np.array([1.0, 2.0, 3.0])[:, None, None, None]
        off = np.random.default_rng(2).random((20, 3))
        g = cic_gather(field, off, 1.0 / n)
        np.testing.assert_allclose(g, np.array([1.0, 2.0, 3.0]) * np.ones((20, 3)))

    def test_deposit_gather_adjoint_self_force(self):
        """A single particle's self-force through deposit->solve->gather must
        vanish on a periodic grid (CIC symmetry)."""
        n = 16
        dx = 1.0 / n
        pos = np.array([[0.37, 0.52, 0.61]])
        rho = cic_deposit(pos, np.array([1.0]), (n, n, n), dx)
        src = gravity_source(rho, g_code=1.0)
        phi = solve_periodic(src, dx)
        g = acceleration_from_potential(phi, dx)
        f = cic_gather(g, pos, dx)
        assert np.all(np.abs(f) < 1e-10)

    @given(st.integers(1, 200), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_mass_conserved_property(self, n_p, seed):
        rng = np.random.default_rng(seed)
        pos = rng.random((n_p, 3))
        mass = rng.random(n_p)
        n = 8
        rho = cic_deposit(pos, mass, (n, n, n), 1.0 / n)
        assert np.isclose(rho.sum() / n**3, mass.sum(), rtol=1e-10)


class TestIntegrator:
    def test_drift_moves_positions(self):
        p = ParticleSet(PositionDD(np.array([[0.5, 0.5, 0.5]])),
                        np.array([[0.1, 0.0, -0.2]]), np.ones(1))
        drift(p, dt=0.5, a=1.0)
        np.testing.assert_allclose(p.positions.hi, [[0.55, 0.5, 0.4]])

    def test_drift_scales_with_a(self):
        p = ParticleSet(PositionDD(np.array([[0.5, 0.5, 0.5]])),
                        np.array([[0.1, 0.0, 0.0]]), np.ones(1))
        drift(p, dt=0.5, a=2.0)
        np.testing.assert_allclose(p.positions.hi[0, 0], 0.525)

    def test_drift_wraps(self):
        p = ParticleSet(PositionDD(np.array([[0.95, 0.5, 0.5]])),
                        np.array([[0.2, 0.0, 0.0]]), np.ones(1))
        drift(p, dt=0.5, a=1.0)
        assert 0.0 <= p.positions.hi[0, 0] < 1.0

    def test_kick_with_drag(self):
        p = ParticleSet(PositionDD(np.array([[0.5, 0.5, 0.5]])),
                        np.array([[1.0, 0.0, 0.0]]), np.ones(1))
        kick(p, None, dt=0.1, a=1.0, adot=1.0)
        assert np.isclose(p.velocities[0, 0], np.exp(-0.1))

    def test_two_body_circular_orbit_energy(self):
        """Two particles orbiting on a periodic PM grid: the PM force is not
        exactly Keplerian, but KDK must hold the separation bounded and not
        secularly pump energy over a few orbits."""
        n = 32
        dx = 1.0 / n
        sep = 6 * dx
        m = 1.0
        pos0 = np.array([[0.5 - sep / 2, 0.5, 0.5], [0.5 + sep / 2, 0.5, 0.5]])

        def accel_fn(p):
            rho = cic_deposit(p.positions.hi + p.positions.lo, p.masses, (n, n, n), dx)
            src = gravity_source(rho, g_code=1.0)
            phi = solve_periodic(src, dx)
            g = acceleration_from_potential(phi, dx)
            return cic_gather(g, p.positions.hi + p.positions.lo, dx)

        # measure the actual PM force to set the circular velocity
        probe = ParticleSet(PositionDD(pos0.copy()), np.zeros((2, 3)), np.full(2, m))
        f = accel_fn(probe)
        g_mag = abs(f[0, 0])
        v_circ = np.sqrt(g_mag * sep / 2)
        vel0 = np.array([[0.0, v_circ, 0.0], [0.0, -v_circ, 0.0]])
        p = ParticleSet(PositionDD(pos0.copy()), vel0.copy(), np.full(2, m))
        t_orbit = 2 * np.pi * (sep / 2) / v_circ
        dt = t_orbit / 200
        seps = []
        for _ in range(400):  # two orbits
            kick_drift_kick(p, accel_fn, dt)
            d = p.positions.hi[1] - p.positions.hi[0]
            d -= np.round(d)
            seps.append(np.sqrt((d**2).sum()))
        seps = np.array(seps)
        assert seps.min() > 0.5 * sep
        assert seps.max() < 2.0 * sep

    def test_momentum_conserved_in_pm(self):
        n = 16
        dx = 1.0 / n
        p = _random_particles(50, seed=7, vmax=0.05)

        def accel_fn(pp):
            rho = cic_deposit(pp.positions.hi + pp.positions.lo, pp.masses, (n, n, n), dx)
            src = gravity_source(rho, g_code=1.0)
            phi = solve_periodic(src, dx)
            g = acceleration_from_potential(phi, dx)
            return cic_gather(g, pp.positions.hi + pp.positions.lo, dx)

        p0 = p.momentum().copy()
        for _ in range(10):
            kick_drift_kick(p, accel_fn, dt=0.01)
        p1 = p.momentum()
        scale = np.abs(p.velocities).max() * p.total_mass
        assert np.all(np.abs(p1 - p0) < 1e-8 * scale)
