"""Tests for the FoF and spherical-overdensity halo finders."""

import numpy as np
import pytest

from repro.analysis.halos import friends_of_friends, spherical_overdensity
from repro.nbody.particles import ParticleSet
from repro.precision.position import PositionDD


def _clustered_particles(n_halo=200, n_field=200, centre=(0.5, 0.5, 0.5),
                         radius=0.02, seed=0):
    rng = np.random.default_rng(seed)
    halo = np.asarray(centre) + radius * rng.standard_normal((n_halo, 3)) / 3
    field = rng.random((n_field, 3))
    pos = np.vstack([halo, field]) % 1.0
    vel = rng.standard_normal((n_halo + n_field, 3)) * 0.01
    mass = np.full(n_halo + n_field, 1.0 / (n_halo + n_field))
    return ParticleSet(PositionDD(pos), vel, mass)


class TestFoF:
    def test_finds_the_halo(self):
        p = _clustered_particles()
        groups = friends_of_friends(p, min_members=20)
        assert len(groups) >= 1
        main = groups[0]
        assert main["n_members"] > 150
        assert np.all(np.abs(main["position"] - 0.5) < 0.05)

    def test_uniform_field_no_big_groups(self):
        rng = np.random.default_rng(1)
        n = 400
        p = ParticleSet(PositionDD(rng.random((n, 3))),
                        np.zeros((n, 3)), np.full(n, 1.0 / n))
        groups = friends_of_friends(p, min_members=50)
        assert groups == []

    def test_periodic_halo_across_boundary(self):
        p = _clustered_particles(centre=(0.01, 0.5, 0.5), seed=2)
        groups = friends_of_friends(p, min_members=20)
        assert len(groups) >= 1
        main = groups[0]
        # centre of mass near x~0 (or ~1), wrapped
        assert min(main["position"][0], 1 - main["position"][0]) < 0.05
        assert main["n_members"] > 150

    def test_two_halos_separated(self):
        rng = np.random.default_rng(3)
        a = np.array([0.25, 0.25, 0.25]) + 0.01 * rng.standard_normal((150, 3))
        b = np.array([0.75, 0.75, 0.75]) + 0.01 * rng.standard_normal((150, 3))
        pos = np.vstack([a, b]) % 1.0
        p = ParticleSet(PositionDD(pos), np.zeros((300, 3)), np.full(300, 1 / 300))
        groups = friends_of_friends(p, min_members=50)
        assert len(groups) == 2
        assert abs(groups[0]["mass"] - 0.5) < 0.05

    def test_empty(self):
        assert friends_of_friends(ParticleSet.empty()) == []

    def test_velocity_dispersion_reported(self):
        p = _clustered_particles(seed=4)
        groups = friends_of_friends(p, min_members=20)
        assert groups[0]["velocity_dispersion"] > 0


class TestSO:
    def test_virial_radius_of_concentration(self):
        p = _clustered_particles(n_halo=400, n_field=100, radius=0.01, seed=5)
        halo = spherical_overdensity(p, (0.5, 0.5, 0.5), mean_density=1.0)
        assert halo["radius"] > 0
        assert halo["mass"] > 0.5  # most of the halo mass captured
        # enclosed mean density at R_vir is by construction ~ Delta
        rho_mean = halo["mass"] / (4 / 3 * np.pi * halo["radius"] ** 3)
        assert rho_mean == pytest.approx(18 * np.pi**2, rel=0.5)

    def test_no_halo_in_uniform_field(self):
        rng = np.random.default_rng(6)
        n = 500
        p = ParticleSet(PositionDD(rng.random((n, 3))),
                        np.zeros((n, 3)), np.full(n, 1.0 / n))
        halo = spherical_overdensity(p, (0.5, 0.5, 0.5), mean_density=1.0)
        # a uniform field has no 178x overdense sphere beyond shot noise
        assert halo["mass"] < 0.05

    def test_periodic_centre(self):
        p = _clustered_particles(centre=(0.99, 0.5, 0.5), seed=7)
        halo = spherical_overdensity(p, (0.99, 0.5, 0.5), mean_density=1.0)
        assert halo["n_members"] > 100
