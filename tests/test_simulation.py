"""Tests for the Simulation facade and SimulationConfig."""

import numpy as np
import pytest

from repro import Simulation, SimulationConfig


def _blob(x, y, z):
    r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2
    return 1.0 + 10.0 * np.exp(-r2 / 0.01)


class TestSimulationConfig:
    def test_defaults(self):
        c = SimulationConfig()
        assert c.n_root == 16 and c.solver == "ppm"

    def test_zeus_selectable(self):
        from repro.hydro import ZeusSolver

        sim = Simulation(SimulationConfig(n_root=8, solver="zeus"))
        assert isinstance(sim.evolver.solver, ZeusSolver)


class TestSimulation:
    def test_set_density_and_run(self):
        sim = Simulation(SimulationConfig(n_root=8, max_level=1,
                                          refine_overdensity=3.0))
        sim.set_density(_blob)
        sim.initialize()
        assert sim.hierarchy.max_level >= 1  # blob flagged immediately
        out = sim.run(t_end=0.01)
        assert out["time"] == pytest.approx(0.01)
        assert out["n_grids"] >= 1

    def test_set_field_updates_energy(self):
        sim = Simulation(SimulationConfig(n_root=8))
        sim.set_field("vx", lambda x, y, z: np.full_like(x, 0.5))
        root = sim.hierarchy.root
        e = root.fields["energy"][root.interior]
        assert np.allclose(e, root.fields["internal"][root.interior] + 0.125)

    def test_gravity_mean_autoset(self):
        sim = Simulation(SimulationConfig(n_root=8, self_gravity=True))
        sim.set_density(_blob)
        sim.initialize()
        expected = float(sim.hierarchy.root.field_view("density").mean())
        assert sim.gravity.mean_density == pytest.approx(expected)

    def test_no_criteria_freezes_structure(self):
        sim = Simulation(SimulationConfig(n_root=8))
        sim.set_density(_blob)
        sim.initialize()
        assert sim.hierarchy.max_level == 0
        sim.run(t_end=0.005)
        assert sim.hierarchy.max_level == 0

    def test_summary_contains_fractions(self):
        sim = Simulation(SimulationConfig(n_root=8))
        sim.set_density(_blob)
        sim.initialize()
        sim.run(t_end=0.002)
        s = sim.summary()
        assert "component_fractions" in s
        assert s["component_fractions"].get("hydro", 0) > 0

    def test_cosmological_clock_wiring(self):
        from repro.amr.evolve import CosmologyClock
        from repro.cosmology import CodeUnits, FriedmannSolver, STANDARD_CDM

        units = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        fr = FriedmannSolver(STANDARD_CDM)
        sim = Simulation(SimulationConfig(n_root=8), units=units, friedmann=fr)
        assert isinstance(sim.evolver.clock, CosmologyClock)
        assert sim.evolver.clock.a_of(0.0) == pytest.approx(units.a_initial)

    def test_jeans_criterion_config(self):
        from repro.cosmology import CodeUnits, STANDARD_CDM

        units = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        sim = Simulation(SimulationConfig(n_root=8, jeans_number=8.0),
                         units=units)
        assert sim.criteria is not None
        assert sim.criteria.jeans_number == 8.0
