"""Tests for the compiled kernel tier (repro.kernels).

Three layers:

* dispatch — backend resolution, env/CLI plumbing, counters, and the
  import guard (a broken numba install degrades to NumPy with one
  warning, never an error).
* parity — every kernel body (the plain-Python flat loops and whichever
  compiled backends load on this host) must be **bitwise** identical to
  the vectorised NumPy reference on random and adversarial inputs.
  That is the policy docs/PERFORMANCE.md documents: compiled kernels
  preserve the reference op order, so equality is exact, not approximate.
* physics — Riemann edge states (near-vacuum, strong/sonic rarefaction,
  symmetric collision) pinned against the exact solver for both the
  two-shock and HLLC solvers on every backend, plus end-to-end
  fingerprint identity through the Simulation facade.
"""

import sys
import warnings

import numpy as np
import pytest

from repro.chemistry.rates import blend_table_numpy
from repro.hydro.reconstruction import plm_reconstruct, ppm_reconstruct
from repro.hydro.riemann import (
    TWO_SHOCK_RTOL,
    _conserved_flux,
    exact_riemann,
    hll_flux,
    hllc_flux,
    solve_flux,
    two_shock_flux,
)
from repro.hydro.tracing import trace_states_numpy
from repro.kernels import _loops, _wrap, dispatch

GAMMA = 1.4

# probe once at collection; the numba-missing warning is expected here
with warnings.catch_warnings():
    warnings.simplefilter("ignore", RuntimeWarning)
    COMPILED = [b for b in dispatch.COMPILED_BACKENDS
                if b in dispatch.available_backends()]

#: kernel tiers whose loop bodies run on this host: the plain-Python
#: flat loops always (they are what numba compiles), plus any compiled
#: backend that loaded
TIERS = ["loops"] + COMPILED

REFERENCE = {
    "riemann.two_shock": two_shock_flux,
    "riemann.hllc": hllc_flux,
    "riemann.hll": hll_flux,
    "reconstruct.ppm": ppm_reconstruct,
    "reconstruct.plm": plm_reconstruct,
    "trace.states": trace_states_numpy,
    "chem.blend": blend_table_numpy,
}


def _tier_impls(tier):
    if tier == "loops":
        return _wrap.make_impls(_loops)
    assert dispatch._load(tier)
    return {name: dispatch._impls[(tier, name)]
            for name in dispatch.KERNEL_NAMES}


def _state(rho, u, p, v=0.0, w=0.0):
    return tuple(np.atleast_1d(np.float64(x)) for x in (rho, u, v, w, p))


def _random_faces(n=256, seed=0):
    rng = np.random.default_rng(seed)

    def side():
        return (rng.random(n) + 0.1, 2.0 * rng.standard_normal(n),
                rng.standard_normal(n), rng.standard_normal(n),
                rng.random(n) + 0.05)

    left, right = side(), side()
    # splice in the adversarial states so the random sweep always covers
    # them: sonic rarefaction, strong double rarefaction (near-vacuum),
    # symmetric collision, supersonic advection, identical states
    hard = [
        ((1.0, 0.75, 0.0, 0.0, 1.0), (0.125, 0.0, 0.0, 0.0, 0.1)),
        ((1.0, -2.0, 0.0, 0.0, 0.4), (1.0, 2.0, 0.0, 0.0, 0.4)),
        ((1.0, 2.0, 0.0, 0.0, 0.4), (1.0, -2.0, 0.0, 0.0, 0.4)),
        ((1.0, 10.0, 0.1, -0.2, 1.0), (0.5, 10.0, 0.0, 0.0, 0.3)),
        ((1.0, 0.5, 0.2, 0.3, 2.0), (1.0, 0.5, 0.2, 0.3, 2.0)),
    ]
    left = tuple(np.array(a) for a in left)
    right = tuple(np.array(a) for a in right)
    for k, (ls, rs) in enumerate(hard):
        for comp in range(5):
            left[comp][k] = ls[comp]
            right[comp][k] = rs[comp]
    return left, right


@pytest.fixture
def isolated():
    """Restore dispatch selection/registry state around a mutating test.

    Declared *first* in test signatures so its teardown runs after
    monkeypatch's env restore — the next test then lazily re-resolves
    from a clean environment.
    """
    yield
    dispatch._reset_for_tests()


# ================================================================ dispatch
class TestDispatch:
    def test_default_is_numpy(self, isolated, monkeypatch):
        monkeypatch.delenv(dispatch.ENV_KERNELS, raising=False)
        dispatch._reset_for_tests()
        assert dispatch.active_backend() == "numpy"

    def test_env_selects_backend(self, isolated, monkeypatch):
        monkeypatch.setenv(dispatch.ENV_KERNELS, "numpy")
        dispatch._reset_for_tests()
        assert dispatch.active_backend() == "numpy"
        if COMPILED:
            monkeypatch.setenv(dispatch.ENV_KERNELS, COMPILED[0])
            dispatch._reset_for_tests()
            assert dispatch.active_backend() == COMPILED[0]

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            dispatch.resolve_backend("fortran")

    def test_auto_prefers_compiled(self, isolated, monkeypatch):
        monkeypatch.delenv(dispatch.ENV_KERNELS, raising=False)
        dispatch._reset_for_tests()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            resolved = dispatch.set_backend("auto", env=False)
        assert resolved == (COMPILED[0] if COMPILED else "numpy")

    def test_set_backend_exports_env(self, isolated, monkeypatch):
        monkeypatch.setenv(dispatch.ENV_KERNELS, "placeholder")
        assert dispatch.set_backend("numpy") == "numpy"
        import os

        assert os.environ[dispatch.ENV_KERNELS] == "numpy"

    def test_counters_and_merge(self, isolated):
        dispatch.set_backend("numpy", env=False)
        dispatch.reset_counters()
        mark = dispatch.counters_totals()
        s = _state(1.0, 0.3, 1.0)
        dispatch.get("riemann.hllc")(s, s, GAMMA)
        dispatch.get("riemann.hllc")(s, s, GAMMA)
        delta = dispatch.counters_delta(mark)
        assert delta["riemann.hllc"]["calls"] == 2
        assert delta["riemann.hllc"]["seconds"] >= 0.0
        # worker-style merge folds a shipped delta into the totals
        dispatch.merge_counters({"riemann.hllc": {"calls": 3,
                                                  "seconds": 0.5}})
        dispatch.merge_counters(None)  # tasks with no kernel activity
        assert dispatch.counters_delta(mark)["riemann.hllc"]["calls"] == 5

    @pytest.mark.skipif(not COMPILED, reason="no compiled backend on host")
    def test_warm_compiles_every_kernel(self, isolated):
        dispatch.set_backend(COMPILED[0], env=False)
        dispatch.reset_counters()
        dispatch.warm()
        assert set(dispatch.counters_totals()) == set(dispatch.KERNEL_NAMES)


class TestImportGuard:
    """Satellite 6: a broken numba must never take down a run."""

    def test_broken_numba_warns_once_and_falls_back(self, isolated,
                                                    monkeypatch):
        dispatch._reset_for_tests()
        # None in sys.modules makes ``import numba`` raise ImportError —
        # the same failure mode as a missing or broken install
        monkeypatch.setitem(sys.modules, "numba", None)
        with pytest.warns(RuntimeWarning,
                          match="backend 'numba' unavailable"):
            assert dispatch.set_backend("numba", env=False) == "numpy"
        # warn-once: a second resolution is silent
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert dispatch.resolve_backend("numba") == "numpy"
        # and the physics still runs on the fallback
        s = _state(1.0, 0.0, 1.0)
        f = solve_flux(s, s, GAMMA, method="hllc")
        assert all(np.isfinite(c).all() for c in f)

    def test_env_numba_with_broken_install(self, isolated, monkeypatch):
        dispatch._reset_for_tests()
        monkeypatch.setitem(sys.modules, "numba", None)
        monkeypatch.setenv(dispatch.ENV_KERNELS, "numba")
        with pytest.warns(RuntimeWarning):
            assert dispatch.active_backend() == "numpy"


# ================================================================== parity
@pytest.mark.parametrize("tier", TIERS)
class TestBitwiseParity:
    """Every tier's kernels must match the NumPy reference bitwise."""

    @pytest.mark.parametrize("solver", ["two_shock", "hllc", "hll"])
    def test_riemann(self, tier, solver):
        impls = _tier_impls(tier)
        left, right = _random_faces()
        ref = REFERENCE[f"riemann.{solver}"](left, right, GAMMA)
        got = impls[f"riemann.{solver}"](left, right, GAMMA)
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a, b)

    def test_riemann_broadcast_3d(self, tier):
        impls = _tier_impls(tier)
        rng = np.random.default_rng(3)
        shape = (7, 4, 5)
        left = (rng.random(shape) + 0.1, rng.standard_normal(shape),
                np.zeros(shape), np.zeros(shape), rng.random(shape) + 0.05)
        right = (rng.random(shape) + 0.1, rng.standard_normal(shape),
                 np.zeros(shape), np.zeros(shape), rng.random(shape) + 0.05)
        ref = hllc_flux(left, right, GAMMA)
        got = impls["riemann.hllc"](left, right, GAMMA)
        for a, b in zip(got, ref):
            assert a.shape == shape
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("method", ["ppm", "plm"])
    @pytest.mark.parametrize("n", [2, 4, 8, 32])
    def test_reconstruct(self, tier, method, n):
        impls = _tier_impls(tier)
        rng = np.random.default_rng(n)
        for q in (rng.random(n) + 0.5,              # 1-d sweep
                  rng.random((n, 3, 2)) + 0.5):     # 3-d with trailing dims
            ref_l, ref_r = REFERENCE[f"reconstruct.{method}"](q)
            got_l, got_r = impls[f"reconstruct.{method}"](q)
            np.testing.assert_array_equal(got_l, ref_l)
            np.testing.assert_array_equal(got_r, ref_r)

    def test_reconstruct_flat_and_discontinuous(self, tier):
        impls = _tier_impls(tier)
        flat = np.full(16, 2.5)
        step = np.where(np.arange(16) < 8, 1.0, 0.125)
        for q in (flat, step):
            for method in ("ppm", "plm"):
                ref = REFERENCE[f"reconstruct.{method}"](q)
                got = impls[f"reconstruct.{method}"](q)
                np.testing.assert_array_equal(got[0], ref[0])
                np.testing.assert_array_equal(got[1], ref[1])

    @pytest.mark.parametrize("n", [8, 32])
    def test_trace(self, tier, n):
        impls = _tier_impls(tier)
        rng = np.random.default_rng(n)
        shape = (n, 4)
        rho = rng.random(shape) + 0.3
        u = 0.5 * rng.standard_normal(shape)
        v = 0.5 * rng.standard_normal(shape)
        w = 0.5 * rng.standard_normal(shape)
        p = rng.random(shape) + 0.2
        ref_l, ref_r = trace_states_numpy(rho, u, v, w, p, 0.3, GAMMA)
        got_l, got_r = impls["trace.states"](rho, u, v, w, p, 0.3, GAMMA)
        for a, b in zip(got_l + got_r, ref_l + ref_r):
            np.testing.assert_array_equal(a, b)

    def test_chem_blend(self, tier):
        impls = _tier_impls(tier)
        rng = np.random.default_rng(7)
        logtab = rng.standard_normal((5, 64))
        idx = rng.integers(0, 63, size=200).astype(np.intp)
        weight = rng.random(200)
        ref = blend_table_numpy(logtab, idx, weight)
        got = impls["chem.blend"](logtab, idx, weight)
        np.testing.assert_array_equal(got, ref)


# ====================================================== two-shock early exit
class TestTwoShockEarlyExit:
    """Satellite 1: the residual-based exit is bitwise-free at rtol=0."""

    def test_default_rtol_is_bitwise(self):
        assert TWO_SHOCK_RTOL == 0.0

    @pytest.mark.parametrize("tier", ["numpy"] + COMPILED)
    def test_early_exit_bitwise_vs_fixed_count(self, tier):
        """The exit at ``p_new == p_star`` is bitwise identical to the
        seed's unconditional fixed-count loop (``rtol < 0`` runs it),
        including faces that limit-cycle in the last ulp and therefore
        never trigger the exit at all."""
        impls = (REFERENCE if tier == "numpy" else _tier_impls(tier))
        fn = impls["riemann.two_shock"]
        left, right = _random_faces(seed=11)
        with_exit = fn(left, right, GAMMA)
        no_exit = fn(left, right, GAMMA, 20, -1.0)
        for a, b in zip(with_exit, no_exit):
            np.testing.assert_array_equal(a, b)

    def test_loose_rtol_is_close_but_documented_nonbitwise(self):
        left, right = _random_faces(seed=13)
        exact = two_shock_flux(left, right, GAMMA)
        loose = two_shock_flux(left, right, GAMMA, rtol=1e-6)
        for a, b in zip(loose, exact):
            np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-8)


# ======================================================= Riemann edge states
@pytest.mark.parametrize("tier", ["numpy"] + COMPILED)
@pytest.mark.parametrize("solver", ["two_shock", "hllc"])
class TestRiemannEdgeStates:
    """Satellite 3: adversarial wave patterns, pinned against the exact
    solver, in both solvers on every backend."""

    def _flux(self, tier, solver, left, right):
        impls = (REFERENCE if tier == "numpy" else _tier_impls(tier))
        return impls[f"riemann.{solver}"](left, right, GAMMA)

    def _exact_flux(self, left, right):
        (rl, ul, _, _, pl), (rr, ur, _, _, pr) = left, right
        rho, u, p = exact_riemann(
            (rl.item(), ul.item(), pl.item()),
            (rr.item(), ur.item(), pr.item()), GAMMA, np.array([0.0]))
        return _conserved_flux(rho, u, np.zeros(1), np.zeros(1), p, GAMMA)

    def test_near_vacuum_expansion_stays_finite(self, tier, solver):
        left = _state(1.0, -4.0, 0.4)
        right = _state(1.0, 4.0, 0.4)
        f = self._flux(tier, solver, left, right)
        assert all(np.isfinite(c).all() for c in f)
        # symmetry: no mass transport through the interface
        assert abs(f[0].item()) < 1e-10

    def test_strong_rarefaction_matches_exact(self, tier, solver):
        left = _state(1.0, -2.0, 0.4)
        right = _state(1.0, 2.0, 0.4)
        f = self._flux(tier, solver, left, right)
        f_ex = self._exact_flux(left, right)
        assert abs(f[0].item()) < 1e-10
        if solver == "two_shock":
            # the momentum flux is p* at the symmetry plane; the two-shock
            # approximation lands close even though both waves rarefy
            assert f[1].item() == pytest.approx(f_ex[1].item(), abs=0.05)
        else:
            # HLLC's star-state momentum flux carries the Einfeldt wave
            # speed into a strong expansion (~ -1.1 here vs ~0 exact) —
            # known HLL-family diffusion, so only pin boundedness; the
            # cross-backend test below pins the value bitwise
            assert -3.0 < f[1].item() < 1.0

    def test_sonic_rarefaction_matches_exact(self, tier, solver):
        left = _state(1.0, 0.75, 1.0)
        right = _state(0.125, 0.0, 0.1)
        f = self._flux(tier, solver, left, right)
        f_ex = self._exact_flux(left, right)
        for a, b in zip(f, f_ex):
            assert a.item() == pytest.approx(b.item(), rel=0.2, abs=0.05)

    def test_symmetric_collision_matches_exact(self, tier, solver):
        """Both waves are shocks: two-shock is exact, HLLC close."""
        left = _state(1.0, 2.0, 0.4)
        right = _state(1.0, -2.0, 0.4)
        f = self._flux(tier, solver, left, right)
        f_ex = self._exact_flux(left, right)
        assert abs(f[0].item()) < 1e-10
        rel = 1e-3 if solver == "two_shock" else 0.25
        assert f[1].item() == pytest.approx(f_ex[1].item(), rel=rel)

    def test_cross_backend_bitwise_on_edges(self, tier, solver):
        """Backends agree bitwise even on the adversarial states."""
        if tier == "numpy":
            pytest.skip("numpy is the reference")
        for ls, rs in [((1.0, -4.0, 0.4), (1.0, 4.0, 0.4)),
                       ((1.0, 0.75, 1.0), (0.125, 0.0, 0.1)),
                       ((1.0, 2.0, 0.4), (1.0, -2.0, 0.4))]:
            left, right = _state(*ls), _state(*rs)
            ref = REFERENCE[f"riemann.{solver}"](left, right, GAMMA)
            got = self._flux(tier, solver, left, right)
            for a, b in zip(got, ref):
                np.testing.assert_array_equal(a, b)


# ============================================================== integration
class TestIntegration:
    def _small_sim(self, **overrides):
        from repro import Simulation, SimulationConfig

        cfg = dict(n_root=8, max_level=1, refine_overdensity=3.0,
                   solver_options={"riemann_solver": "hllc"})
        cfg.update(overrides)
        sim = Simulation(SimulationConfig(**cfg))
        r2 = lambda x, y, z: ((x - 0.5) ** 2 + (y - 0.5) ** 2
                              + (z - 0.5) ** 2)
        sim.set_density(lambda x, y, z: 1.0 + 10.0 * np.exp(-r2(x, y, z)
                                                            / 0.01))
        sim.initialize()
        return sim

    def test_hllc_and_two_shock_both_run(self, isolated):
        fps = {}
        for rs in ("hllc", "two_shock"):
            sim = self._small_sim(solver_options={"riemann_solver": rs})
            sim.run(t_end=0.005)
            fps[rs] = sim.hierarchy.fingerprint()
        # different solvers genuinely produce different answers
        assert fps["hllc"] != fps["two_shock"]

    def test_timers_and_telemetry_record_kernels(self, isolated):
        from repro.runtime.telemetry import step_record

        dispatch.set_backend("numpy", env=False)
        sim = self._small_sim()
        dt = sim.evolver.advance_root_step(0.005)
        stats = sim.evolver.last_kernel_stats
        assert stats["backend"] == "numpy"
        assert stats["per_kernel"]["riemann.hllc"]["calls"] > 0
        assert sim.timers.totals["kernels"] > 0.0
        record = step_record(sim.evolver, step=1, dt=dt)
        assert record["kernels"]["backend"] == "numpy"
        assert "riemann.hllc" in record["kernels"]["per_kernel"]

    @pytest.mark.skipif(not COMPILED, reason="no compiled backend on host")
    def test_fingerprint_identical_across_kernel_backends(self, isolated):
        """The PR-3 gate, extended to the kernel tier: a run on the
        compiled kernels is bitwise-identical to the NumPy reference."""
        fps = {}
        for backend in ["numpy"] + COMPILED:
            dispatch.set_backend(backend, env=False)
            sim = self._small_sim()
            sim.run(t_end=0.005)
            fps[backend] = sim.hierarchy.fingerprint()
        assert len(set(fps.values())) == 1, fps

    @pytest.mark.skipif(not COMPILED, reason="no compiled backend on host")
    def test_fingerprint_identical_on_thread_exec(self, isolated):
        """Compiled kernels under the thread exec backend stay bitwise
        identical to the serial NumPy run (worker counters included)."""
        dispatch.set_backend("numpy", env=False)
        ref = self._small_sim()
        ref.run(t_end=0.005)
        dispatch.set_backend(COMPILED[0], env=False)
        sim = self._small_sim(exec_backend="thread", workers=2)
        sim.run(t_end=0.005)
        assert sim.hierarchy.fingerprint() == ref.hierarchy.fingerprint()

    def test_simulation_config_kernels_field(self, isolated, monkeypatch):
        monkeypatch.delenv(dispatch.ENV_KERNELS, raising=False)
        target = COMPILED[0] if COMPILED else "numpy"
        self._small_sim(kernels=target)
        assert dispatch.active_backend() == target
        import os

        # the choice is exported so process-pool workers resolve the same
        assert os.environ[dispatch.ENV_KERNELS] == target
