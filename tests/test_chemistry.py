"""Tests for the 12-species network, rates and cooling."""

import numpy as np
import pytest

from repro import constants as const
from repro.chemistry import (
    ChemistryNetwork,
    RateTable,
    SPECIES,
    cooling_rate,
    electron_density,
    primordial_initial_fractions,
)
from repro.chemistry.cooling import atomic_cooling, compton, h2_cooling
from repro.chemistry.species import SPECIES_NAMES, charge_total, nuclei_totals

YEAR = const.YEAR


def _number_densities(n_h=1.0, x_e=2e-4, f_h2=2e-6, T=None):
    """Uniform primordial composition at H number density n_h (cm^-3)."""
    fr = primordial_initial_fractions(x_e=x_e, f_h2=f_h2)
    rho = n_h * const.HYDROGEN_MASS / const.HYDROGEN_MASS_FRACTION
    n = {
        s: np.atleast_1d(fr[s] * rho / (SPECIES[s].mass_amu * const.HYDROGEN_MASS))
        for s in SPECIES_NAMES
    }
    return n, np.atleast_1d(rho)


class TestRates:
    def test_all_rates_positive_finite(self):
        T = np.logspace(0.5, 8, 50)
        rates = RateTable()(T)
        for name, val in rates.items():
            assert np.all(np.isfinite(val)), name
            assert np.all(val >= 0.0), name

    def test_recombination_decreases_with_T(self):
        r = RateTable()
        assert r.k2_HII_recombination(1e3) > r.k2_HII_recombination(1e5)

    def test_collisional_ionisation_activates_above_1e4K(self):
        r = RateTable()
        assert r.k1_HI_ionisation(5e3) < 1e-20
        assert r.k1_HI_ionisation(2e5) > 1e-12

    def test_case_b_magnitude(self):
        # alpha_B(1e4 K) ~ 2.6e-13 cm^3/s; the Cen fit is close
        r = RateTable().k2_HII_recombination(1e4)
        assert 1e-13 < r < 6e-13

    def test_three_body_grows_toward_low_T(self):
        r = RateTable()
        assert r.k22_threebody_H2(200.0) > r.k22_threebody_H2(2000.0)

    def test_h2_dissociation_negligible_cold(self):
        r = RateTable()
        assert r.k13_H2_H_dissociation(300.0) < 1e-30
        assert r.k13_H2_H_dissociation(1e4) > 1e-15

    def test_deuterium_exchange_asymmetry(self):
        # the 43 K endothermicity suppresses D -> D+ at low T
        r = RateTable()
        assert r.d2_D_charge_exchange(50.0) < r.d3_DII_charge_exchange(50.0)


class TestCooling:
    def test_atomic_cooling_peaks_near_1e4(self):
        n, _ = _number_densities(n_h=1.0, x_e=0.5)
        lam_lo = atomic_cooling(n, np.atleast_1d(8e3))
        lam_mid = atomic_cooling(n, np.atleast_1d(2e4))
        assert lam_mid > lam_lo  # Ly-alpha switches on

    def test_h2_cooling_dominates_below_1e4(self):
        """The paper's key physics: H2 is 'the primary cooling agent' < 1e4 K."""
        n, _ = _number_densities(n_h=100.0, x_e=1e-4, f_h2=1e-3)
        T = np.atleast_1d(800.0)
        assert h2_cooling(n, T) > atomic_cooling(n, T)

    def test_h2_cooling_density_regimes(self):
        """LDL: Lambda ~ n_H2 * n_H (quadratic); LTE: ~ n_H2 (linear)."""
        T = np.atleast_1d(1000.0)
        lams = []
        for nh in (1.0, 100.0):
            n, _ = _number_densities(n_h=nh, f_h2=1e-3)
            lams.append(float(h2_cooling(n, T)[0]))
        # low-density: 100x density -> ~1e4x cooling
        assert 3e3 < lams[1] / lams[0] < 3e4
        lams_hi = []
        for nh in (1e12, 1e14):
            n, _ = _number_densities(n_h=nh, f_h2=1e-3)
            lams_hi.append(float(h2_cooling(n, T)[0]))
        # LTE: 100x density -> ~100x cooling
        assert 30 < lams_hi[1] / lams_hi[0] < 300

    def test_compton_sign(self):
        n, _ = _number_densities(x_e=1e-2)
        z = 20.0
        t_cmb = const.CMB_TEMPERATURE_Z0 * (1 + z)
        assert compton(n, np.atleast_1d(2 * t_cmb), z) > 0  # cooling
        assert compton(n, np.atleast_1d(0.5 * t_cmb), z) < 0  # heating

    def test_total_positive_for_hot_gas(self):
        n, _ = _number_densities(n_h=1.0, x_e=0.5)
        assert cooling_rate(n, np.atleast_1d(1e5), z=0.0) > 0


class TestNetworkEquilibria:
    def test_collisional_ionisation_equilibrium_hot(self):
        """At T=2e5 K (held fixed), hydrogen ionises almost completely."""
        n, rho = _number_densities(n_h=1.0, x_e=1e-3)
        net = ChemistryNetwork(cmb_floor=False, three_body=False, formation_heating=False)
        T = 2e5
        e = ChemistryNetwork.energy_from_temperature(n, T, rho)
        # hold temperature fixed by resetting e each call (pure network test)
        for _ in range(40):
            n, _e = net.advance(n, e, rho, 3e4 * YEAR, z=0.0)
            e = ChemistryNetwork.energy_from_temperature(n, T, rho)
        x = (n["HII"] / (n["HI"] + n["HII"])).item()
        assert x > 0.98

    def test_recombination_cold_dense(self):
        """Ionised gas at low T recombines on the alpha*n timescale."""
        n, rho = _number_densities(n_h=1e4, x_e=0.9)
        net = ChemistryNetwork(cmb_floor=False, three_body=False, formation_heating=False)
        T = 1e3
        e = ChemistryNetwork.energy_from_temperature(n, T, rho)
        for _ in range(20):
            n, _ = net.advance(n, e, rho, 1e4 * YEAR, z=0.0)
            e = ChemistryNetwork.energy_from_temperature(n, T, rho)
        x = (n["HII"] / (n["HI"] + n["HII"])).item()
        assert x < 0.01

    def test_h2_forms_via_hm_channel(self):
        """Warm slightly-ionised gas builds f_H2 ~ 1e-4..1e-3 (paper Sec. 4)."""
        n, rho = _number_densities(n_h=100.0, x_e=1e-3, f_h2=1e-8)
        net = ChemistryNetwork(cmb_floor=False, three_body=False, formation_heating=False)
        T = 1000.0
        e = ChemistryNetwork.energy_from_temperature(n, T, rho)
        f0 = (2 * n["H2I"] / (n["HI"] + 2 * n["H2I"])).item()
        for _ in range(30):
            n, _ = net.advance(n, e, rho, 1e5 * YEAR, z=20.0)
            e = ChemistryNetwork.energy_from_temperature(n, T, rho)
        f1 = (2 * n["H2I"] / (n["HI"] + 2 * n["H2I"])).item()
        assert f1 > 10 * f0
        assert 1e-5 < f1 < 1e-2

    def test_three_body_converts_fully_molecular(self):
        """At n ~ 1e12 cm^-3 three-body formation makes the gas molecular —
        the transition the paper reports at central densities 1e9-1e11."""
        n, rho = _number_densities(n_h=1e12, x_e=1e-8, f_h2=1e-3)
        net = ChemistryNetwork(cmb_floor=False, formation_heating=False)
        T = 800.0
        e = ChemistryNetwork.energy_from_temperature(n, T, rho)
        for _ in range(30):
            n, _ = net.advance(n, e, rho, 300.0 * YEAR, z=20.0)
            e = ChemistryNetwork.energy_from_temperature(n, T, rho)
        f = (2 * n["H2I"] / (n["HI"] + 2 * n["H2I"])).item()
        assert f > 0.5

    def test_without_three_body_stays_trace(self):
        n, rho = _number_densities(n_h=1e12, x_e=1e-8, f_h2=1e-3)
        net = ChemistryNetwork(cmb_floor=False, three_body=False, formation_heating=False)
        T = 800.0
        e = ChemistryNetwork.energy_from_temperature(n, T, rho)
        for _ in range(10):
            n, _ = net.advance(n, e, rho, 300.0 * YEAR, z=20.0)
            e = ChemistryNetwork.energy_from_temperature(n, T, rho)
        f = (2 * n["H2I"] / (n["HI"] + 2 * n["H2I"])).item()
        assert f < 0.1


class TestConservation:
    def _advance_many(self, n, rho, e, steps=20, dt=1e4 * YEAR, **kw):
        net = ChemistryNetwork(**kw)
        for _ in range(steps):
            n, e = net.advance(n, e, rho, dt, z=20.0)
        return n, e

    def test_nuclei_conserved(self):
        n, rho = _number_densities(n_h=100.0, x_e=1e-2, f_h2=1e-5)
        e = ChemistryNetwork.energy_from_temperature(n, 2000.0, rho)
        before = nuclei_totals(n)
        n2, _ = self._advance_many(n, rho, e)
        after = nuclei_totals(n2)
        for key in ("H", "He", "D"):
            assert np.allclose(after[key], before[key], rtol=1e-3), key

    def test_charge_neutral(self):
        n, rho = _number_densities(n_h=10.0, x_e=0.3)
        e = ChemistryNetwork.energy_from_temperature(n, 5000.0, rho)
        n2, _ = self._advance_many(n, rho, e)
        net_charge = charge_total(n2) - (-n2["de"] * 0 + 0)  # charge incl. de
        # charge_total counts de with charge -1 already
        assert np.all(np.abs(net_charge) <= 1e-6 * n2["HII"] + 1e-20)

    def test_positivity(self):
        n, rho = _number_densities(n_h=1e6, x_e=0.5, f_h2=1e-4)
        e = ChemistryNetwork.energy_from_temperature(n, 300.0, rho)
        n2, e2 = self._advance_many(n, rho, e, steps=10, dt=1e6 * YEAR)
        for s in SPECIES_NAMES:
            assert np.all(n2[s] >= 0.0), s
        assert np.all(e2 > 0.0)


class TestThermalEvolution:
    def test_hot_gas_cools(self):
        n, rho = _number_densities(n_h=1.0, x_e=0.5)
        net = ChemistryNetwork(cmb_floor=False)
        e0 = ChemistryNetwork.energy_from_temperature(n, 3e4, rho)
        n2, e1 = net.advance(n, e0, rho, 3e6 * YEAR, z=0.0)
        assert e1.item() < 0.8 * e0.item()

    def test_cmb_floor_respected(self):
        """Gas cannot radiate below T_cmb(z): the paper's Compton coupling."""
        z = 20.0
        t_cmb = const.CMB_TEMPERATURE_Z0 * (1 + z)
        n, rho = _number_densities(n_h=1e4, x_e=1e-3, f_h2=1e-3)
        net = ChemistryNetwork(cmb_floor=True)
        e = ChemistryNetwork.energy_from_temperature(n, 500.0, rho)
        for _ in range(20):
            n, e = net.advance(n, e, rho, 1e6 * YEAR, z=z)
        T = ChemistryNetwork.temperature(n, e, rho).item()
        assert T >= 0.9 * t_cmb

    def test_substep_count_reported(self):
        n, rho = _number_densities(n_h=100.0, x_e=0.3)
        net = ChemistryNetwork()
        e = ChemistryNetwork.energy_from_temperature(n, 2e4, rho)
        net.advance(n, e, rho, 1e6 * YEAR, z=10.0)
        assert net.last_substeps >= 1


class TestInitialFractions:
    def test_sum_to_unity(self):
        fr = primordial_initial_fractions()
        total = sum(v for k, v in fr.items() if k != "de")
        assert abs(total - 1.0) < 1e-6

    def test_hydrogen_split(self):
        fr = primordial_initial_fractions(x_e=1e-3)
        assert abs(fr["HII"] - 0.76e-3) < 1e-9
        assert fr["HI"] > 0.75

    def test_electron_consistent(self):
        fr = primordial_initial_fractions()
        rho = 1.0
        n = {s: fr[s] * rho / SPECIES[s].mass_amu for s in SPECIES_NAMES}
        assert np.isclose(n["de"], electron_density(n), rtol=1e-10)


class TestAdvanceFields:
    def test_code_unit_roundtrip(self):
        from repro.cosmology import CodeUnits, STANDARD_CDM
        from repro.hydro.state import make_fields

        units = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        a = units.a_initial
        shape = (4, 4, 4)
        fr = primordial_initial_fractions()
        f = make_fields(shape, density=0.06, internal_energy=1.0,
                        advected=list(SPECIES_NAMES))
        for s in SPECIES_NAMES:
            f[s][:] = fr[s] * f["density"]
        f["internal"][:] = units.energy_from_temperature(300.0, 1.22, a)
        f["energy"][:] = f["internal"]
        net = ChemistryNetwork()
        net.advance_fields(f, dt_code=1e-6, units=units, a=a)
        # species still sum to the gas density
        total = sum(f[s] for s in SPECIES_NAMES if s != "de")
        np.testing.assert_allclose(total, f["density"], rtol=1e-3)
        assert np.all(f["internal"] > 0)
