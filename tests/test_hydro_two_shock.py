"""Tests for the two-shock Riemann solver (the paper's PPM companion)."""

import numpy as np
import pytest

from repro.hydro import PPMSolver
from repro.hydro.riemann import _conserved_flux, exact_riemann, two_shock_flux
from repro.problems import SodShockTube

GAMMA = 1.4


def _state(rho, u, p, v=0.0, w=0.0):
    return tuple(np.atleast_1d(np.float64(x)) for x in (rho, u, v, w, p))


class TestTwoShock:
    def test_identical_states(self):
        s = _state(1.0, 0.4, 2.0, v=0.2)
        f = two_shock_flux(s, s, GAMMA)
        expected = _conserved_flux(*s, GAMMA)
        for a, b in zip(f, expected):
            np.testing.assert_allclose(a, b, rtol=1e-10)

    def test_star_pressure_matches_exact_for_shocks(self):
        """Colliding streams (both waves are shocks): two-shock is exact."""
        left = _state(1.0, 2.0, 0.4)
        right = _state(1.0, -2.0, 0.4)
        f = two_shock_flux(left, right, GAMMA)
        # interface state: u*=0 by symmetry, momentum flux = p*
        rho_ex, u_ex, p_ex = exact_riemann((1.0, 2.0, 0.4), (1.0, -2.0, 0.4),
                                           GAMMA, np.array([0.0]))
        assert abs(f[0].item()) < 1e-10  # no mass flux by symmetry
        assert f[1].item() == pytest.approx(p_ex[0], rel=1e-3)

    def test_sod_interface_close_to_exact(self):
        """Sod has a rarefaction: two-shock is approximate but close."""
        left = _state(1.0, 0.0, 1.0)
        right = _state(0.125, 0.0, 0.1)
        f = two_shock_flux(left, right, GAMMA)
        rho_ex, u_ex, p_ex = exact_riemann((1.0, 0.0, 1.0), (0.125, 0.0, 0.1),
                                           GAMMA, np.array([0.0]))
        f_ex = _conserved_flux(
            rho_ex, u_ex, np.zeros(1), np.zeros(1), p_ex, GAMMA
        )
        for a, b in zip(f, f_ex):
            assert abs(a.item() - b.item()) < 0.08 * max(abs(b.item()), 0.1)

    def test_supersonic_upwind(self):
        left = _state(1.0, 10.0, 1.0)
        right = _state(0.5, 10.0, 0.3)
        f = two_shock_flux(left, right, GAMMA)
        expected = _conserved_flux(*left, GAMMA)
        for a, b in zip(f, expected):
            np.testing.assert_allclose(a, b, rtol=1e-8)

    def test_vectorised_and_finite(self):
        rng = np.random.default_rng(0)
        n = 128
        left = (rng.random(n) + 0.2, rng.standard_normal(n), np.zeros(n),
                np.zeros(n), rng.random(n) + 0.2)
        right = (rng.random(n) + 0.2, rng.standard_normal(n), np.zeros(n),
                 np.zeros(n), rng.random(n) + 0.2)
        f = two_shock_flux(left, right, GAMMA)
        for comp in f:
            assert comp.shape == (n,)
            assert np.all(np.isfinite(comp))

    def test_sod_tube_with_two_shock_solver(self):
        """The full PPM + two-shock combination converges on Sod."""
        sod = SodShockTube(n=96)
        sod.run(0.2, solver=PPMSolver(gamma=GAMMA, riemann_solver="two_shock"))
        assert sod.l1_error() < 0.03

    def test_dispatch(self):
        from repro.hydro.riemann import solve_flux

        s = _state(1.0, 0.0, 1.0)
        f = solve_flux(s, s, GAMMA, method="two_shock")
        assert len(f) == 5
        with pytest.raises(ValueError):
            solve_flux(s, s, GAMMA, method="nope")
