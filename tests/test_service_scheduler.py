"""Scheduler invariants, replayed in virtual time.

These tests drive the *production* FairShareScheduler object through the
VirtualCluster replay harness — hundreds of run lifetimes per test in
milliseconds — so fair-share convergence, anti-starvation and the
backfill throughput win are asserted against the same decision logic the
daemon applies, not a reimplementation of it.
"""

import pytest

from repro.service import Decision, FairShareScheduler, SimJob, VirtualCluster
from repro.service.registry import RunRecord


def make_record(run_id, *, tenant="default", priority=0, workers=1,
                seq=None, cells=100, state="QUEUED"):
    return RunRecord(run_id=run_id, tenant=tenant, priority=priority,
                     workers=workers, seq=seq if seq is not None
                     else int(run_id[1:]), cells=cells, state=state)


# ---------------------------------------------------------------- decisions
class TestDecide:
    def test_empty_decision_is_falsy(self):
        assert not Decision()
        assert Decision(start=["r1"])
        assert Decision(preempt=["r1"])

    def test_starts_within_budget_in_seq_order(self):
        sched = FairShareScheduler(cost_aware=False)
        queued = [make_record(f"r{i}") for i in range(5)]
        decision = sched.decide(queued, [], total_workers=3)
        assert decision.start == ["r0", "r1", "r2"]
        assert decision.preempt == []

    def test_higher_priority_schedules_first(self):
        sched = FairShareScheduler(cost_aware=False)
        queued = [make_record("r0", priority=0),
                  make_record("r1", priority=5)]
        decision = sched.decide(queued, [], total_workers=1)
        assert decision.start == ["r1"]

    def test_oversized_run_is_clamped_to_budget(self):
        sched = FairShareScheduler()
        queued = [make_record("r0", workers=16)]
        decision = sched.decide(queued, [], total_workers=4)
        assert decision.start == ["r0"]

    def test_preempts_strictly_lower_priority_only(self):
        sched = FairShareScheduler()
        running_low = make_record("r0", priority=0, workers=2,
                                  state="RUNNING")
        running_same = make_record("r1", priority=5, workers=2,
                                   state="RUNNING")
        urgent = make_record("r2", priority=5, workers=2)
        decision = sched.decide([urgent], [running_low, running_same],
                                total_workers=4)
        # equal priority is never a victim; the low one is
        assert decision.preempt == ["r0"]
        assert decision.start == []  # capacity claimed after the drain

    def test_no_preemption_when_deficit_not_coverable(self):
        sched = FairShareScheduler()
        running = [make_record("r0", priority=0, workers=1,
                               state="RUNNING"),
                   make_record("r1", priority=9, workers=3,
                               state="RUNNING")]
        urgent = make_record("r2", priority=5, workers=4)
        decision = sched.decide([urgent], running, total_workers=4)
        # only 1 worker is preemptible (<5), deficit of 4 not coverable:
        # a partial drain would churn r0 for nothing
        assert decision.preempt == []

    def test_draining_runs_are_not_preempted_twice(self):
        sched = FairShareScheduler()
        running = [make_record("r0", priority=0, workers=2,
                               state="RUNNING")]
        urgent = make_record("r1", priority=5, workers=2)
        first = sched.decide([urgent], running, total_workers=2)
        assert first.preempt == ["r0"]
        second = sched.decide([urgent], running, total_workers=2,
                              draining=frozenset({"r0"}))
        assert second.preempt == []

    def test_fifo_head_of_line_blocks(self):
        sched = FairShareScheduler.fifo()
        queued = [make_record("r0", workers=4),
                  make_record("r1", workers=1)]
        running = [make_record("r9", workers=1, state="RUNNING")]
        decision = sched.decide(queued, running, total_workers=4)
        # head needs 4, only 3 free; FIFO does not look behind it
        assert decision.start == []
        backfill = FairShareScheduler(cost_aware=False)
        decision = backfill.decide(queued, running, total_workers=4)
        assert decision.start == ["r1"]

    def test_cost_aware_prefers_measured_cheapest(self):
        sched = FairShareScheduler(fair_share=False)
        sched.calibrator.observe("run", 0, 100, 10.0)  # 0.1 s/cell
        small = make_record("r0", seq=1, cells=10)
        big = make_record("r1", seq=0, cells=1000)
        decision = sched.decide([big, small], [], total_workers=1)
        assert decision.start == ["r0"]


# --------------------------------------------------------------- fair share
class TestFairShare:
    def test_equal_weights_converge_to_equal_usage(self):
        sched = FairShareScheduler(aging_rounds=0)
        jobs = [SimJob(f"a{i}", duration=4.0, tenant="alice")
                for i in range(30)]
        jobs += [SimJob(f"b{i}", duration=4.0, tenant="bob")
                 for i in range(30)]
        result = VirtualCluster(sched, total_workers=2).run(jobs)
        usage = result.tenant_usage
        ratio = usage["alice"] / usage["bob"]
        assert 0.8 < ratio < 1.25

    def test_weighted_tenant_gets_proportional_share(self):
        sched = FairShareScheduler({"alice": 2.0, "bob": 1.0},
                                   aging_rounds=0)
        # saturated cluster, measured mid-backlog: once every job has
        # drained, cumulative usage equalises no matter the weights, so
        # the share ratio is only visible while both queues are deep
        jobs = [SimJob(f"a{i}", duration=3.0, tenant="alice")
                for i in range(40)]
        jobs += [SimJob(f"b{i}", duration=3.0, tenant="bob")
                 for i in range(40)]
        result = VirtualCluster(sched, total_workers=3).run(
            jobs, max_time=40.0)
        usage = result.tenant_usage
        ratio = usage["alice"] / usage["bob"]
        assert 1.5 < ratio < 2.7

    def test_interleaving_not_tenant_batches(self):
        sched = FairShareScheduler(aging_rounds=0)
        jobs = [SimJob(f"a{i}", duration=2.0, tenant="alice")
                for i in range(10)]
        jobs += [SimJob(f"b{i}", duration=2.0, tenant="bob")
                 for i in range(10)]
        result = VirtualCluster(sched, total_workers=1).run(jobs)
        # bob's first job must not wait for all of alice's queue
        assert result.jobs["b0"]["start"] < result.jobs["a5"]["start"]


# --------------------------------------------------------------- starvation
class TestStarvation:
    @staticmethod
    def _steady_high_priority_stream():
        # one low-priority job under a stream of high-priority arrivals
        # that keeps the single worker permanently contended
        jobs = [SimJob("victim", duration=2.0, priority=0)]
        jobs += [SimJob(f"hi{i}", duration=2.0, priority=5,
                        arrival=float(i))
                 for i in range(120)]
        return jobs

    def test_aging_prevents_starvation(self):
        sched = FairShareScheduler(aging_rounds=10, preemption=False)
        result = VirtualCluster(sched, total_workers=1).run(
            self._steady_high_priority_stream(), max_time=400.0)
        victim = result.jobs["victim"]
        assert victim["finish"] is not None
        assert victim["finish"] < 300.0

    def test_without_aging_the_victim_starves(self):
        sched = FairShareScheduler(aging_rounds=0, preemption=False)
        result = VirtualCluster(sched, total_workers=1).run(
            self._steady_high_priority_stream(), max_time=120.0)
        assert result.jobs["victim"]["finish"] is None

    def test_aging_never_grants_preemption_rights(self):
        sched = FairShareScheduler(aging_rounds=1)
        waiting = make_record("r0", priority=0)
        running = make_record("r1", priority=1, workers=1, state="RUNNING")
        for _ in range(50):  # effective priority now far above 1
            decision = sched.decide([waiting], [running], total_workers=1)
            assert decision.preempt == []


# --------------------------------------------------------------- throughput
class TestThroughput:
    @staticmethod
    def _mixed_queue():
        # a narrow long job is already absorbing one worker when a
        # full-width job reaches the queue head: FIFO leaves three
        # workers idle behind it until the blocker drains; backfill
        # seats the short narrow jobs there immediately
        jobs = [SimJob("blocker", duration=30.0, workers=1),
                SimJob("wide", duration=10.0, workers=4)]
        jobs += [SimJob(f"narrow{i}", duration=2.0, workers=1)
                 for i in range(12)]
        return jobs

    def test_backfill_beats_fifo_makespan(self):
        # cost-blind variant isolates the backfill effect: the blocker
        # stays on the critical path and the narrows ride alongside it
        fair = VirtualCluster(
            FairShareScheduler(aging_rounds=0, cost_aware=False),
            total_workers=4,
        ).run(self._mixed_queue())
        fifo = VirtualCluster(
            FairShareScheduler.fifo(), total_workers=4
        ).run(self._mixed_queue())
        assert fair.makespan < fifo.makespan
        assert fair.runs_per_hour > fifo.runs_per_hour

    def test_shortest_first_cuts_mean_wait(self):
        def mean_wait(result):
            waits = [j["wait"] for j in result.jobs.values()
                     if j["wait"] is not None]
            return sum(waits) / len(waits)

        fair = VirtualCluster(
            FairShareScheduler(aging_rounds=0), total_workers=4
        ).run(self._mixed_queue())
        fifo = VirtualCluster(
            FairShareScheduler.fifo(), total_workers=4
        ).run(self._mixed_queue())
        assert mean_wait(fair) < mean_wait(fifo)

    def test_preempted_job_keeps_progress(self):
        sched = FairShareScheduler(aging_rounds=0)
        jobs = [SimJob("low", duration=10.0, priority=0, workers=1),
                SimJob("hi", duration=4.0, priority=5, workers=1,
                       arrival=3.0)]
        result = VirtualCluster(sched, total_workers=1,
                                preempt_overhead=1.0).run(jobs)
        low = result.jobs["low"]
        assert result.jobs["hi"]["finish"] is not None
        assert low["preemptions"] == 1
        # 4s done pre-drain + 4s displaced + 6s remaining + 1s overhead;
        # losing the checkpointed progress would push this to 19
        assert low["finish"] == pytest.approx(15.0, abs=1.0)
        assert low["finish"] < 18.0

    def test_utilisation_reported(self):
        sched = FairShareScheduler(aging_rounds=0)
        jobs = [SimJob(f"j{i}", duration=5.0) for i in range(8)]
        result = VirtualCluster(sched, total_workers=2).run(jobs)
        assert 0.9 < result.utilisation <= 1.0


# --------------------------------------------------------------- estimates
class TestCostModel:
    def test_estimate_none_before_any_measurement(self):
        sched = FairShareScheduler()
        assert sched.estimate_seconds(make_record("r0")) is None

    def test_observe_run_feeds_calibrator_and_ledger(self):
        sched = FairShareScheduler()
        record = make_record("r0", tenant="alice", workers=2, cells=100)
        sched.observe_run(record, wall_seconds=10.0)
        assert sched.usage["alice"] == pytest.approx(20.0)
        est = sched.estimate_seconds(make_record("r1", cells=200))
        assert est == pytest.approx(20.0)

    def test_forget_drops_wait_state(self):
        sched = FairShareScheduler()
        record = make_record("r0", workers=2)
        sched.decide([record], [make_record("r1", workers=1,
                                            state="RUNNING")],
                     total_workers=2)
        assert sched.wait_rounds["r0"] == 1
        sched.forget("r0")
        assert "r0" not in sched.wait_rounds
