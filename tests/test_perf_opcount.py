"""Tests for the live operation recorder (the paper's 'future project')."""

import numpy as np
import pytest

from repro.amr import Hierarchy, HierarchyEvolver, RefinementCriteria
from repro.amr.boundary import set_boundary_values
from repro.amr.rebuild import rebuild_hierarchy
from repro.hydro import PPMSolver
from repro.perf import HierarchyStats, MultiStats, OperationRecorder


def _blob_hierarchy():
    h = Hierarchy(n_root=8)
    root = h.root
    x, y, z = np.meshgrid(*root.cell_centres(), indexing="ij")
    r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2
    root.fields["density"][root.interior] = 1.0 + 10 * np.exp(-r2 / 0.01)
    set_boundary_values(h, 0)
    return h


class TestOperationRecorder:
    def test_records_during_run(self):
        h = _blob_hierarchy()
        rec = OperationRecorder()
        ev = HierarchyEvolver(h, PPMSolver(), stats=rec, cfl=0.3)
        ev.advance_to(0.01)
        assert rec.steps_recorded > 0
        assert rec.counts.total > 0
        assert rec.counts.counts["hydrodynamics"] > 0

    def test_rebuild_recorded(self):
        h = _blob_hierarchy()
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=1)
        rebuild_hierarchy(h, 1, crit)
        rec = OperationRecorder()
        ev = HierarchyEvolver(h, PPMSolver(), criteria=crit, max_level=1,
                              stats=rec, cfl=0.3)
        ev.advance_to(0.01)
        assert rec.counts.counts.get("rebuild", 0) > 0

    def test_sustained_rate_positive(self):
        h = _blob_hierarchy()
        rec = OperationRecorder()
        ev = HierarchyEvolver(h, PPMSolver(), stats=rec, cfl=0.3)
        ev.advance_to(0.005)
        assert rec.sustained_rate() > 0
        assert "Mflop/s" in rec.report()

    def test_deeper_levels_add_more_ops(self):
        """Ops scale with cells x steps: a refined run must count more."""
        h1 = _blob_hierarchy()
        r1 = OperationRecorder()
        HierarchyEvolver(h1, PPMSolver(), stats=r1, cfl=0.3).advance_to(0.01)

        h2 = _blob_hierarchy()
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=1)
        rebuild_hierarchy(h2, 1, crit)
        r2 = OperationRecorder()
        HierarchyEvolver(h2, PPMSolver(), criteria=None, stats=r2,
                         cfl=0.3).advance_to(0.01)
        assert r2.counts.total > r1.counts.total


class TestMultiStats:
    def test_fans_out(self):
        h = _blob_hierarchy()
        rec = OperationRecorder()
        hs = HierarchyStats()
        ev = HierarchyEvolver(h, PPMSolver(), stats=MultiStats(rec, hs), cfl=0.3)
        ev.advance_to(0.01)
        assert rec.steps_recorded > 0
        assert len(hs.times) > 0
