"""Validation subsystem: registry, analytic solutions, norms, harness,
report schema, and the ``problems`` / ``validate`` CLI entry points.

The analytic checks pin the Sedov similarity solution against published
constants (beta = 1.1517 for gamma = 5/3, 1.0328 for 1.4) and its own
internal invariants (energy closure, Rankine-Hugoniot jumps), so the
convergence floors downstream rest on a reference that is itself tested.
"""

import json

import numpy as np
import pytest

from repro.validation import (
    ProblemSpec,
    ValidationReport,
    error_norms,
    fit_order,
    get_problem,
    kh_growth_rate,
    list_problems,
    pairwise_orders,
    restrict,
    riemann_profile,
    rt_growth_rate,
    run_convergence,
    sedov_solution,
    validate_report,
)


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_builtin_problems_present(self):
        names = {spec.name for spec in list_problems()}
        assert {"collapse", "shock_tube", "sphere_collapse",
                "zeldovich_pancake", "sedov", "kelvin_helmholtz",
                "rayleigh_taylor"} <= names

    @pytest.mark.parametrize("alias,name", [
        ("sod", "shock_tube"), ("kh", "kelvin_helmholtz"),
        ("blast", "sedov"), ("rt", "rayleigh_taylor"),
        ("Sedov-Taylor", "sedov"),  # case + dash normalisation
    ])
    def test_aliases_resolve(self, alias, name):
        assert get_problem(alias).name == name

    def test_unknown_problem_lists_known(self):
        with pytest.raises(KeyError, match="shock_tube"):
            get_problem("nonesuch")

    def test_create_honours_size_arg(self):
        sod = get_problem("sod").create(n=32)
        assert sod.n == 32
        sedov = get_problem("sedov").create(n=8)
        assert sedov.n == 8  # size_arg routes to n_root

    def test_measurable_flags_match_protocol(self):
        for spec in list_problems():
            if spec.measurable and spec.name != "collapse":
                cls = spec.factory
                assert hasattr(cls, "solution_fields"), spec.name
                assert hasattr(cls, "reference_fields"), spec.name


# ------------------------------------------------------- analytic solutions
class TestSedovSolution:
    def test_beta_matches_literature(self):
        # Sedov's alpha-integral constants, e.g. Kamm & Timmes (2007)
        assert sedov_solution(0.05, gamma=5.0 / 3.0).beta == pytest.approx(
            1.15167, abs=2e-4)
        assert sedov_solution(0.05, gamma=1.4).beta == pytest.approx(
            1.03280, abs=2e-4)

    def test_energy_closure(self):
        # integrating the profile's kinetic + thermal energy recovers E
        sol = sedov_solution(0.03, energy=2.0, rho0=1.5)
        assert sol.total_energy() == pytest.approx(2.0, rel=1e-4)

    def test_shock_jump_conditions(self):
        gamma = 5.0 / 3.0
        sol = sedov_solution(0.05, gamma=gamma)
        # strong-shock Rankine-Hugoniot values just behind the front
        assert sol.density[-1] == pytest.approx(
            (gamma + 1.0) / (gamma - 1.0), rel=1e-6)
        us = 2.0 * sol.r_shock / (5.0 * 0.05)
        assert sol.velocity[-1] == pytest.approx(
            2.0 * us / (gamma + 1.0), rel=1e-6)
        assert sol.pressure[-1] == pytest.approx(
            2.0 * us**2 / (gamma + 1.0), rel=1e-6)

    def test_shock_radius_scaling(self):
        # R(t) = beta (E t^2 / rho0)^{1/5}
        r1 = sedov_solution(0.01).r_shock
        r2 = sedov_solution(0.01 * 32).r_shock
        assert r2 / r1 == pytest.approx(32 ** 0.4, rel=1e-12)

    def test_profiles_monotone_and_sampling(self):
        sol = sedov_solution(0.05)
        assert np.all(np.diff(sol.r) > 0)
        sampled = sol.sample(np.array([0.0, sol.r_shock * 2.0]))
        assert sampled["density"][1] == pytest.approx(1.0)  # ambient
        assert sampled["density"][0] < 1e-2  # evacuated centre

    def test_gamma_guard(self):
        with pytest.raises(ValueError):
            sedov_solution(0.05, gamma=2.0)


class TestOtherAnalytic:
    def test_riemann_profile_matches_states(self):
        x = np.linspace(0.0, 1.0, 64)
        prof = riemann_profile(
            (1.0, 0.0, 1.0), (0.125, 0.0, 0.1), 1.4, x, t=0.1)
        assert prof["density"][0] == pytest.approx(1.0)
        assert prof["density"][-1] == pytest.approx(0.125)
        assert prof["velocity"].max() > 0.5  # contact region is moving
        # t = 0 degenerates to the initial discontinuity
        prof0 = riemann_profile(
            (1.0, 0.0, 1.0), (0.125, 0.0, 0.1), 1.4, x, t=0.0)
        assert set(np.unique(prof0["density"])) == {1.0, 0.125}

    def test_kh_growth_rate(self):
        # equal densities: sigma = k |du| / 2
        assert kh_growth_rate(2.0, 1.0, 1.0, 1.0, -1.0) == pytest.approx(2.0)

    def test_rt_growth_rate(self):
        # sigma = sqrt(A g k), A = 1/3 here
        assert rt_growth_rate(3.0, 2.0, 1.0, 1.0) == pytest.approx(1.0)


# ---------------------------------------------------------- norms & fitting
class TestNorms:
    def test_error_norms_units(self):
        err = error_norms(np.array([1.0, 2.0, 3.0]), np.array([0.0, 0.0, 0.0]))
        assert err["l1"] == pytest.approx(2.0)
        assert err["l2"] == pytest.approx(np.sqrt(14.0 / 3.0))
        assert err["linf"] == pytest.approx(3.0)

    def test_restrict_block_average(self):
        fine = np.arange(8.0).reshape(4, 2)
        coarse = restrict(fine, (2, 1))
        # conservative mean over 2x2 blocks
        np.testing.assert_allclose(coarse, [[1.5], [5.5]])

    def test_restrict_rejects_non_integer_factor(self):
        with pytest.raises(ValueError):
            restrict(np.zeros((6, 6)), (4, 6))

    def test_fit_order_recovers_slope(self):
        ns = [16, 32, 64]
        errs = [1.0 / n**2 for n in ns]
        assert fit_order(ns, errs) == pytest.approx(2.0, abs=1e-12)
        assert pairwise_orders(ns, errs) == pytest.approx([2.0, 2.0])

    def test_fit_order_degenerate_is_zero(self):
        assert fit_order([16, 32], [0.0, 0.0]) == 0.0


# ----------------------------------------------------------------- harness
class TestConvergenceHarness:
    def test_shock_tube_analytic_mode(self):
        report = run_convergence("shock_tube", resolutions=(32, 64),
                                 t_end=0.1)
        assert report.mode == "analytic"
        assert report.resolutions == [32, 64]
        assert report.order("density") > 0.8
        assert report.meta["steps"]["64"] > report.meta["steps"]["32"]
        # norms strictly decrease with resolution
        rows = report.norms["density"]
        assert rows[1]["l1"] < rows[0]["l1"]

    def test_self_convergence_mode(self):
        report = run_convergence(
            "kelvin_helmholtz", resolutions=(8, 16, 32),
            t_end=0.05, fields=("density",),
        )
        assert report.mode == "self"
        # the finest grid is the reference: zero error, out of the fit
        assert report.norms["density"][-1]["l1"] == 0.0
        assert report.meta["fit_resolutions"] == [8, 16]
        assert report.norms["density"][0]["l1"] > 0.0

    def test_non_measurable_problem_rejected(self):
        with pytest.raises(ValueError, match="convergence"):
            run_convergence("sphere_collapse")

    def test_needs_two_resolutions(self):
        with pytest.raises(ValueError, match="two resolutions"):
            run_convergence("shock_tube", resolutions=(64,))


# ------------------------------------------------------------------ report
class TestValidationReport:
    def _report(self) -> ValidationReport:
        return run_convergence("shock_tube", resolutions=(32, 64), t_end=0.1)

    def test_json_round_trip(self, tmp_path):
        report = self._report()
        path = str(tmp_path / "report.json")
        report.save(path)
        loaded = ValidationReport.load(path)
        assert loaded.to_dict() == report.to_dict()
        assert loaded.order("density") == report.order("density")

    def test_validator_accepts_real_report(self):
        validate_report(json.loads(self._report().to_json()))

    @pytest.mark.parametrize("mutate,match", [
        (lambda d: d.pop("norms"), "norms"),
        (lambda d: d.update(mode="psychic"), "mode"),
        (lambda d: d.update(resolutions=[64, 32]), "ascending"),
        (lambda d: d["norms"]["density"].pop(), "row"),
        (lambda d: d.update(resolutions=[32]), "resolutions"),
    ])
    def test_validator_rejects_corruption(self, mutate, match):
        d = json.loads(self._report().to_json())
        mutate(d)
        with pytest.raises(ValueError, match=match):
            validate_report(d)


# --------------------------------------------------------------------- CLI
class TestValidationCLI:
    def test_problems_lists_registry(self, capsys):
        from repro.__main__ import main

        assert main(["problems"]) == 0
        out = capsys.readouterr().out
        assert "sedov" in out and "MAC" in out
        assert "kelvin_helmholtz" in out

    def test_validate_floor_pass_and_report(self, capsys, tmp_path):
        from repro.__main__ import main

        out_path = str(tmp_path / "val.json")
        rc = main(["validate", "--problem", "shock_tube",
                   "-r", "32", "64", "--t-end", "0.1",
                   "--fields", "density",
                   "--floor", "0.8", "--out", out_path])
        assert rc == 0
        validate_report(json.load(open(out_path)))
        assert "order" in capsys.readouterr().out

    def test_validate_floor_fail_exits_nonzero(self, capsys):
        from repro.__main__ import main

        rc = main(["validate", "--problem", "shock_tube",
                   "-r", "32", "64", "--t-end", "0.1",
                   "--fields", "density", "--floor", "10.0"])
        assert rc == 1
