"""Tests for DDArray / DoubleDouble user types, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision import DDArray, DoubleDouble, dd

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
small_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestDoubleDoubleScalar:
    def test_string_parse_exact(self):
        x = DoubleDouble("0.1")
        # 0.1 is not representable in f64; the dd residual must be the f64 error
        assert float(x.hi) == 0.1
        assert x.lo != 0.0
        assert abs(x.to_decimal() - __import__("decimal").Decimal("0.1")) < 1e-32

    def test_int_construction(self):
        big = 2**70 + 1  # not representable in one f64
        x = DoubleDouble(big)
        assert x.to_decimal() == big

    def test_float_roundtrip(self):
        x = DoubleDouble(3.5)
        assert float(x) == 3.5

    def test_str_has_31_digits(self):
        s = str(DoubleDouble("1") / DoubleDouble("3"))
        mantissa = s.split("E")[0].replace(".", "").replace("-", "")
        assert len(mantissa) >= 31

    def test_repr_roundtrip_value(self):
        x = DoubleDouble("0.12345678901234567890123456789")
        y = eval(repr(x), {"DoubleDouble": DoubleDouble})
        assert float((x - y).to_float64()) == 0.0

    def test_one_third_times_three(self):
        x = DoubleDouble(1) / DoubleDouble(3)
        y = x * 3
        err = abs(float(y - DoubleDouble(1)))
        assert err < 1e-31


class TestDDArray:
    def test_construction_and_shape(self):
        a = DDArray(np.arange(6.0).reshape(2, 3))
        assert a.shape == (2, 3)
        assert a.size == 6
        assert a.ndim == 2

    def test_zeros(self):
        z = DDArray.zeros((4,))
        assert np.all(z.hi == 0) and np.all(z.lo == 0)

    def test_indexing(self):
        a = DDArray(np.array([1.0, 2.0, 3.0]))
        b = a[1]
        assert float(b.hi) == 2.0
        a[0] = 5.0
        assert a.hi[0] == 5.0

    def test_setitem_with_ddarray(self):
        a = DDArray.zeros((3,))
        a[1] = DoubleDouble("0.1")
        assert a.hi[1] == 0.1
        assert a.lo[1] != 0.0

    def test_arithmetic_with_scalars(self):
        a = DDArray(np.array([1.0, 2.0]))
        b = (a + 1.0) * 2.0 - 4.0
        np.testing.assert_array_equal(b.to_float64(), [0.0, 2.0])

    def test_radd_rsub_rmul_rdiv(self):
        a = DDArray(np.array([2.0, 4.0]))
        np.testing.assert_array_equal((1.0 + a).to_float64(), [3.0, 5.0])
        np.testing.assert_array_equal((10.0 - a).to_float64(), [8.0, 6.0])
        np.testing.assert_array_equal((3.0 * a).to_float64(), [6.0, 12.0])
        np.testing.assert_array_equal((8.0 / a).to_float64(), [4.0, 2.0])

    def test_comparisons_elementwise(self):
        a = DDArray(np.array([1.0, 2.0, 3.0]))
        b = DDArray(np.array([2.0, 2.0, 2.0]))
        np.testing.assert_array_equal(a < b, [True, False, False])
        np.testing.assert_array_equal(a == b, [False, True, False])
        np.testing.assert_array_equal(a >= b, [False, True, True])
        np.testing.assert_array_equal(a != b, [True, False, True])

    def test_comparison_uses_lo_word(self):
        a = DDArray(np.array([1.0]), np.array([1e-25]))
        b = DDArray(np.array([1.0]), np.array([0.0]))
        assert bool((a > b)[0])

    def test_sqrt(self):
        a = DDArray(np.array([4.0, 9.0]))
        np.testing.assert_array_equal(a.sqrt().to_float64(), [2.0, 3.0])

    def test_sum_compensated(self):
        # Sum 1.0 + n tiny values that would individually vanish in f64
        n = 1000
        vals = np.full(n, 1e-20)
        a = DDArray(np.concatenate([[1.0], vals]))
        total = a.sum()
        resid = total - DoubleDouble(1.0)
        assert abs(float(resid) - n * 1e-20) < 1e-25

    def test_reshape_and_copy(self):
        a = DDArray(np.arange(6.0))
        b = a.reshape(2, 3)
        assert b.shape == (2, 3)
        c = a.copy()
        c[0] = 99.0
        assert a.hi[0] == 0.0


class TestAlgebraicProperties:
    @given(small_floats, small_floats)
    @settings(max_examples=100, deadline=None)
    def test_add_commutative(self, x, y):
        a, b = DoubleDouble(x), DoubleDouble(y)
        d = (a + b) - (b + a)
        assert float(d) == 0.0

    @given(small_floats, small_floats, small_floats)
    @settings(max_examples=100, deadline=None)
    def test_add_associative_to_dd_eps(self, x, y, z):
        a, b, c = DoubleDouble(x), DoubleDouble(y), DoubleDouble(z)
        lhs = (a + b) + c
        rhs = a + (b + c)
        scale = max(abs(x), abs(y), abs(z), 1.0)
        assert abs(float(lhs - rhs)) <= scale * 1e-29

    @given(small_floats)
    @settings(max_examples=100, deadline=None)
    def test_additive_inverse(self, x):
        a = DoubleDouble(x)
        assert float(a + (-a)) == 0.0

    @given(small_floats, small_floats)
    @settings(max_examples=100, deadline=None)
    def test_mul_commutative(self, x, y):
        a, b = DoubleDouble(x), DoubleDouble(y)
        assert float(a * b - b * a) == 0.0

    @given(st.floats(min_value=1e-6, max_value=1e6, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_div_mul_roundtrip(self, x):
        a = DoubleDouble(x)
        b = DoubleDouble(7.0)
        r = (a / b) * b
        assert abs(float(r - a)) <= abs(x) * 1e-30

    @given(st.floats(min_value=1e-100, max_value=1e100, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_sqrt_squares_back(self, x):
        a = DoubleDouble(x)
        r = a.sqrt() * a.sqrt()
        assert abs(float(r - a)) <= x * 1e-29

    @given(small_floats, small_floats)
    @settings(max_examples=100, deadline=None)
    def test_ordering_antisymmetric(self, x, y):
        a, b = DoubleDouble(x), DoubleDouble(y)
        assert bool(a < b) == bool(b > a)
        assert bool(a == b) == (x == y)


def test_dd_shorthand():
    assert isinstance(dd("0.5"), DoubleDouble)
    assert isinstance(dd(1.5), DoubleDouble)
    assert isinstance(dd(np.zeros(3)), DDArray)


def test_mixed_ndarray_ops_promote():
    a = DDArray(np.ones(3))
    v = np.array([1.0, 2.0, 3.0])
    out = a + v
    np.testing.assert_array_equal(out.to_float64(), [2.0, 3.0, 4.0])
    out2 = v * a  # __array_priority__ must route to DDArray.__rmul__
    assert isinstance(out2, DDArray)
