"""Integration tests of the PPM and ZEUS solvers: shock tubes, conservation,
advection, cosmological expansion."""

import numpy as np
import pytest

from repro.hydro import PPMSolver, ZeusSolver, hydro_timestep
from repro.hydro.riemann import exact_riemann
from repro.hydro.state import (
    FieldSet,
    fill_ghosts_outflow,
    fill_ghosts_periodic,
    make_fields,
    total_energy,
)

NG = 3


def _sod_fields(n=128, gamma=1.4):
    """Sod tube along x on an (n, 1, 1)-interior grid."""
    shape = (n + 2 * NG, 1 + 2 * NG, 1 + 2 * NG)
    f = make_fields(shape, density=1.0, internal_energy=1.0)
    x = (np.arange(n + 2 * NG) - NG + 0.5) / n
    left = x < 0.5
    rho = np.where(left, 1.0, 0.125)
    p = np.where(left, 1.0, 0.1)
    f["density"][:] = rho[:, None, None]
    f["internal"][:] = (p / ((gamma - 1.0) * rho))[:, None, None]
    f["energy"][:] = f["internal"]
    return f


def _run_sod(solver, n=128, t_end=0.2, gamma=1.4):
    f = _sod_fields(n, gamma)
    dx = 1.0 / n
    t = 0.0
    step = 0
    while t < t_end:
        fill_ghosts_outflow(f, NG)
        dt = min(hydro_timestep(f, dx, cfl=0.4, gamma=gamma), t_end - t)
        solver.step(f, dx, dt, permute=step)
        t += dt
        step += 1
    sl = (slice(NG, -NG), NG, NG)
    x = (np.arange(n) + 0.5) / n
    return x, f["density"][sl], f["vx"][sl], f["internal"][sl]


class TestSodShockTube:
    @pytest.mark.parametrize(
        "solver_cls,tol_rho",
        [(PPMSolver, 0.012), (ZeusSolver, 0.03)],
    )
    def test_against_exact(self, solver_cls, tol_rho):
        gamma = 1.4
        if solver_cls is PPMSolver:
            solver = solver_cls(gamma=gamma)
        else:
            solver = solver_cls(gamma=gamma)
        x, rho, u, e = _run_sod(solver, n=128, t_end=0.2, gamma=gamma)
        xi = (x - 0.5) / 0.2
        rho_ex, u_ex, p_ex = exact_riemann((1.0, 0.0, 1.0), (0.125, 0.0, 0.1), gamma, xi)
        # L1 density error (away from boundaries)
        err = np.abs(rho - rho_ex)[8:-8].mean()
        assert err < tol_rho, f"L1 density error {err}"

    def test_ppm_shock_position(self):
        gamma = 1.4
        x, rho, u, e = _run_sod(PPMSolver(gamma=gamma), n=128)
        # shock should sit near x = 0.5 + 1.7522*0.2 ~ 0.8504; find the
        # largest density jump in the right half beyond the contact (~0.685)
        search = x[:-1] > 0.75
        drho = np.abs(np.diff(rho))
        i_shock = np.argmax(np.where(search, drho, 0.0))
        assert 0.82 < x[i_shock] < 0.88

    def test_ppm_converges_with_resolution(self):
        gamma = 1.4
        errs = []
        for n in (32, 128):
            x, rho, _, _ = _run_sod(PPMSolver(gamma=gamma), n=n)
            xi = (x - 0.5) / 0.2
            rho_ex, _, _ = exact_riemann((1.0, 0.0, 1.0), (0.125, 0.0, 0.1), gamma, xi)
            errs.append(np.abs(rho - rho_ex)[n // 16 : -n // 16].mean())
        # discontinuity-dominated L1 error: expect clear but sub-linear
        # improvement with 4x resolution
        assert errs[1] < 0.7 * errs[0]

    def test_positivity_strong_shock(self):
        """Near-vacuum double rarefaction must not crash or go negative."""
        gamma = 1.4
        n = 64
        f = _sod_fields(n, gamma)
        f["density"][:] = 1.0
        f["internal"][:] = 0.4 / ((gamma - 1.0) * 1.0)
        x = (np.arange(n + 2 * NG) - NG + 0.5) / n
        f["vx"][:] = np.where(x < 0.5, -2.0, 2.0)[:, None, None]
        f["energy"][:] = total_energy(f)
        solver = PPMSolver(gamma=gamma)
        dx, t = 1.0 / n, 0.0
        for step in range(40):
            fill_ghosts_outflow(f, NG)
            dt = hydro_timestep(f, dx, cfl=0.4, gamma=gamma)
            solver.step(f, dx, dt, permute=step)
        assert np.all(f["density"] > 0)
        assert np.all(f["internal"] > 0)


class TestConservation:
    def _periodic_setup(self, n=16, seed=0):
        rng = np.random.default_rng(seed)
        shape = (n + 2 * NG,) * 3
        f = make_fields(shape, density=1.0, internal_energy=1.0)
        f["density"][:] = 1.0 + 0.3 * rng.random(shape)
        f["vx"][:] = 0.2 * rng.standard_normal(shape)
        f["vy"][:] = 0.2 * rng.standard_normal(shape)
        f["vz"][:] = 0.2 * rng.standard_normal(shape)
        f["internal"][:] = 1.0 + 0.2 * rng.random(shape)
        fill_ghosts_periodic(f, NG)
        f["energy"] = total_energy(f)
        return f

    def _totals(self, f):
        sl = (slice(NG, -NG),) * 3
        rho = f["density"][sl]
        return (
            rho.sum(),
            (rho * f["vx"][sl]).sum(),
            (rho * f["energy"][sl]).sum(),
        )

    def test_ppm_conserves_mass_momentum_energy(self):
        f = self._periodic_setup()
        solver = PPMSolver()
        m0, px0, e0 = self._totals(f)
        dx = 1.0 / 16
        for step in range(10):
            fill_ghosts_periodic(f, NG)
            dt = hydro_timestep(f, dx, cfl=0.3)
            solver.step(f, dx, dt, permute=step)
        m1, px1, e1 = self._totals(f)
        assert abs(m1 - m0) < 1e-10 * abs(m0)
        assert abs(px1 - px0) < 1e-10 * max(abs(px0), 1.0)
        assert abs(e1 - e0) < 1e-9 * abs(e0)

    def test_zeus_conserves_mass(self):
        f = self._periodic_setup(seed=3)
        solver = ZeusSolver()
        m0 = self._totals(f)[0]
        dx = 1.0 / 16
        for step in range(10):
            fill_ghosts_periodic(f, NG)
            dt = hydro_timestep(f, dx, cfl=0.25)
            solver.step(f, dx, dt, permute=step)
        m1 = self._totals(f)[0]
        assert abs(m1 - m0) < 1e-10 * abs(m0)

    def test_uniform_flow_stays_uniform(self):
        shape = (12 + 2 * NG,) * 3
        f = make_fields(shape, density=2.0, velocity=(0.5, -0.3, 0.1), internal_energy=1.5)
        solver = PPMSolver()
        dx = 1.0 / 12
        for step in range(8):
            fill_ghosts_periodic(f, NG)
            solver.step(f, dx, 0.01, permute=step)
        sl = (slice(NG, -NG),) * 3
        np.testing.assert_allclose(f["density"][sl], 2.0, rtol=1e-12)
        np.testing.assert_allclose(f["vx"][sl], 0.5, rtol=1e-12)
        np.testing.assert_allclose(f["internal"][sl], 1.5, rtol=1e-10)


class TestPassiveAdvection:
    @pytest.mark.parametrize("solver_cls", [PPMSolver, ZeusSolver])
    def test_scalar_blob_advects(self, solver_cls):
        n = 32
        shape = (n + 2 * NG, 1 + 2 * NG, 1 + 2 * NG)
        f = make_fields(shape, density=1.0, velocity=(1.0, 0, 0), internal_energy=10.0,
                        advected=["tracer"])
        x = (np.arange(n + 2 * NG) - NG + 0.5) / n
        f["tracer"][:] = (np.exp(-0.5 * ((x - 0.3) / 0.05) ** 2))[:, None, None]
        solver = solver_cls()
        dx = 1.0 / n
        t, t_end = 0.0, 0.25
        step = 0
        while t < t_end:
            fill_ghosts_periodic(f, NG)
            dt = min(0.3 * dx / (1.0 + 5.0), t_end - t)
            solver.step(f, dx, dt, permute=step)
            t += dt
            step += 1
        sl = (slice(NG, -NG), NG, NG)
        tracer = f["tracer"][sl]
        # peak should have moved to ~0.55
        x_in = (np.arange(n) + 0.5) / n
        peak = x_in[np.argmax(tracer)]
        assert abs(peak - 0.55) < 3.0 / n
        assert np.all(tracer >= 0.0)

    def test_tracer_mass_conserved_ppm(self):
        n = 16
        shape = (n + 2 * NG,) * 3
        f = make_fields(shape, density=1.0, velocity=(0.7, 0.2, -0.4),
                        internal_energy=5.0, advected=["HI"])
        rng = np.random.default_rng(1)
        f["HI"][:] = rng.random(shape) * f["density"]
        fill_ghosts_periodic(f, NG)
        sl = (slice(NG, -NG),) * 3
        m0 = f["HI"][sl].sum()
        solver = PPMSolver()
        for step in range(6):
            fill_ghosts_periodic(f, NG)
            solver.step(f, 1.0 / n, 0.005, permute=step)
        assert abs(f["HI"][sl].sum() - m0) < 1e-10 * m0


class TestCosmologicalExpansion:
    def test_static_gas_cools_adiabatically(self):
        """Proper e of a uniform static gas scales as a^-2 for gamma=5/3."""
        shape = (8 + 2 * NG,) * 3
        f = make_fields(shape, density=1.0, internal_energy=1.0)
        solver = PPMSolver()
        a, adot = 1.0, 0.5
        e0 = f["internal"][NG, NG, NG]
        dt = 0.001
        n_steps = 200
        for step in range(n_steps):
            fill_ghosts_periodic(f, NG)
            solver.step(f, 1.0 / 8, dt, a=a + adot * (step + 0.5) * dt, adot=adot, permute=step)
        a_final = a + adot * n_steps * dt
        expected = e0 * a_final**-2.0
        got = f["internal"][NG + 2, NG + 2, NG + 2]
        assert abs(got - expected) / expected < 0.01

    def test_hubble_drag_damps_velocity(self):
        shape = (8 + 2 * NG,) * 3
        f = make_fields(shape, density=1.0, velocity=(1.0, 0, 0), internal_energy=100.0)
        solver = PPMSolver()
        adot = 1.0
        dt = 0.0005
        for step in range(100):
            a_mid = 1.0 + adot * (step + 0.5) * dt
            fill_ghosts_periodic(f, NG)
            solver.step(f, 1.0 / 8, dt, a=a_mid, adot=adot, permute=step)
        a_final = 1.0 + adot * 100 * dt
        expected = 1.0 / a_final  # v ~ 1/a
        got = f["vx"][NG + 1, NG + 1, NG + 1]
        assert abs(got - expected) / expected < 0.01


class TestDualEnergy:
    def test_hypersonic_flow_temperature_accurate(self):
        """Cold gas moving at Mach ~100: internal energy must stay accurate."""
        shape = (16 + 2 * NG, 1 + 2 * NG, 1 + 2 * NG)
        e_int = 1e-4
        f = make_fields(shape, density=1.0, velocity=(10.0, 0, 0), internal_energy=e_int)
        solver = PPMSolver()
        dx = 1.0 / 16
        for step in range(20):
            fill_ghosts_periodic(f, NG)
            dt = hydro_timestep(f, dx, cfl=0.4)
            solver.step(f, dx, dt, permute=step)
        sl = (slice(NG, -NG), NG, NG)
        got = f["internal"][sl]
        # without dual energy, e = E - v^2/2 loses all digits; with it the
        # uniform-flow internal energy survives to good accuracy
        assert np.all(np.abs(got - e_int) < 0.05 * e_int)


class TestStepFluxes:
    def test_flux_shapes(self):
        n = 8
        shape = (n + 2 * NG,) * 3
        f = make_fields(shape, density=1.0, internal_energy=1.0)
        fill_ghosts_periodic(f, NG)
        out = PPMSolver().step(f, 1.0 / n, 1e-3)
        assert set(out.fluxes.keys()) == {"x", "y", "z"}
        fx = out.fluxes["x"]["density"]
        assert fx.shape == (n + 1, n, n)
        fy = out.fluxes["y"]["density"]
        assert fy.shape == (n, n + 1, n)

    def test_flux_consistent_with_update(self):
        """Mass change of the interior must equal the net boundary flux."""
        n = 8
        shape = (n + 2 * NG,) * 3
        rng = np.random.default_rng(5)
        f = make_fields(shape, density=1.0, internal_energy=2.0)
        f["density"][:] = 1.0 + 0.3 * rng.random(shape)
        f["vx"][:] = 0.3 * rng.standard_normal(shape)
        fill_ghosts_periodic(f, NG)
        f["energy"] = total_energy(f)
        sl = (slice(NG, -NG),) * 3
        m0 = f["density"][sl].sum()
        dx = 1.0 / n
        out = PPMSolver().step(f, dx, 1e-3)
        m1 = f["density"][sl].sum()
        net = 0.0
        for axis_name in ("x", "y", "z"):
            flx = out.fluxes[axis_name]["density"]
            axis = "xyz".index(axis_name)
            first = np.take(flx, 0, axis=axis)
            last = np.take(flx, -1, axis=axis)
            net += (first.sum() - last.sum()) / dx
        assert abs((m1 - m0) - net) < 1e-12 * max(abs(m0), 1.0)
