"""Tests for Zel'dovich and nested-grid initial conditions."""

import numpy as np
import pytest

from repro import constants as const
from repro.cosmology import CodeUnits, NestedGridIC, STANDARD_CDM, ZeldovichIC


@pytest.fixture(scope="module")
def units():
    return CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)


@pytest.fixture(scope="module")
def ic(units):
    return ZeldovichIC(STANDARD_CDM, units, z_init=100.0, n=16, seed=1)


class TestZeldovichGas:
    def test_mean_density_is_baryon_fraction(self, ic):
        gas = ic.gas()
        target = STANDARD_CDM.omega_baryon / STANDARD_CDM.omega_matter
        assert abs(gas.density.mean() - target) / target < 0.02

    def test_density_positive(self, ic):
        assert np.all(ic.gas().density > 0)

    def test_velocity_shape_and_magnitude(self, ic, units):
        gas = ic.gas()
        assert gas.velocity.shape == (3, 16, 16, 16)
        # peculiar velocities at z=100 in a 256 kpc box: small but nonzero;
        # sanity: proper peculiar velocity below 100 km/s
        v_proper_cms = np.abs(gas.velocity).max() * units.velocity_unit
        assert 0 < v_proper_cms < 1e7

    def test_energy_matches_temperature(self, ic, units):
        gas = ic.gas()
        t = units.temperature_from_energy(
            gas.energy[0, 0, 0], const.MU_NEUTRAL, units.a_initial
        )
        assert np.isclose(float(t), ic.temperature_init, rtol=1e-10)

    def test_default_temperature_adiabatic(self, ic):
        # z=100 < z_dec=137: T = 2.725 * 101^2 / 138 ~ 200 K
        assert 100 < ic.temperature_init < 300


class TestZeldovichParticles:
    def test_particle_count(self, ic):
        p = ic.particles()
        assert p.positions.hi.shape == (16**3, 3)
        assert p.velocities.shape == (16**3, 3)

    def test_total_mass_is_cdm_fraction(self, ic):
        p = ic.particles()
        target = STANDARD_CDM.omega_cdm / STANDARD_CDM.omega_matter
        assert np.isclose(p.masses.sum(), target, rtol=1e-12)

    def test_positions_in_box(self, ic):
        p = ic.particles()
        assert np.all(p.positions.hi >= -1e-12)
        assert np.all(p.positions.hi < 1.0 + 1e-12)

    def test_displacements_small_at_high_z(self, ic):
        p = ic.particles()
        n = 16
        q1 = (np.arange(n) + 0.5) / n
        qx, qy, qz = np.meshgrid(q1, q1, q1, indexing="ij")
        q = np.stack([qx, qy, qz], axis=-1).reshape(-1, 3)
        disp = p.positions.hi - q
        disp -= np.round(disp)  # unwrap periodic
        assert np.abs(disp).max() < 0.5 / n  # far less than a cell at z=100

    def test_momentum_near_zero(self, ic):
        p = ic.particles()
        mom = (p.velocities * p.masses[:, None]).sum(axis=0)
        scale = np.abs(p.velocities).max() * p.masses.sum()
        assert np.all(np.abs(mom) < 1e-10 * max(scale, 1e-30) + 1e-15)


class TestNestedGridIC:
    @pytest.fixture(scope="class")
    def nested(self, units):
        return NestedGridIC(
            STANDARD_CDM,
            units,
            z_init=100.0,
            n_root=8,
            static_levels=2,
            region_left=(0.25, 0.25, 0.25),
            region_right=(0.75, 0.75, 0.75),
            seed=2,
        )

    def test_level_count(self, nested):
        fields = nested.level_fields()
        assert len(fields) == 3

    def test_level_shapes(self, nested):
        fields = nested.level_fields()
        assert fields[0].density.shape == (8, 8, 8)
        assert fields[1].density.shape == (8, 8, 8)  # half the box at 2x res
        assert fields[2].density.shape == (16, 16, 16)

    def test_levels_consistent_under_averaging(self, nested):
        """Coarse level must equal the volume average of the finer level."""
        from repro.cosmology.gaussian_field import degrade_field

        fields = nested.level_fields()
        lvl1, lvl2 = fields[1], fields[2]
        avg = degrade_field(lvl2.density, 2)
        np.testing.assert_allclose(avg, lvl1.density, rtol=1e-12)

    def test_root_consistent_with_level1(self, nested):
        from repro.cosmology.gaussian_field import degrade_field

        fields = nested.level_fields()
        root_region = fields[0].density[2:6, 2:6, 2:6]
        avg = degrade_field(fields[1].density, 2)
        np.testing.assert_allclose(avg, root_region, rtol=1e-12)

    def test_region_edges(self, nested):
        fields = nested.level_fields()
        np.testing.assert_allclose(fields[1].left_edge, [0.25] * 3)
        np.testing.assert_allclose(fields[1].right_edge, [0.75] * 3)

    def test_particle_mass_ratio(self, nested):
        """Mass resolution boost in the refined region: r^(3*levels) = 64."""
        p = nested.particles()
        m_min, m_max = p.masses.min(), p.masses.max()
        assert np.isclose(m_max / m_min, 64.0, rtol=1e-10)

    def test_particle_total_mass_conserved(self, nested):
        p = nested.particles()
        target = STANDARD_CDM.omega_cdm / STANDARD_CDM.omega_matter
        assert np.isclose(p.masses.sum(), target, rtol=1e-10)

    def test_fine_particles_inside_region(self, nested):
        p = nested.particles()
        fine = p.masses == p.masses.min()
        pos = p.positions.hi[fine]
        # displaced positions can stray slightly past the region edge
        assert np.all(pos > 0.25 - 0.1)
        assert np.all(pos < 0.75 + 0.1)

    def test_too_large_fine_grid_rejected(self, units):
        with pytest.raises(ValueError):
            NestedGridIC(STANDARD_CDM, units, 100.0, n_root=256, static_levels=2)

    def test_paper_factor_512(self, units):
        """Paper: 3 static levels boost mass resolution by 512."""
        nested = NestedGridIC(
            STANDARD_CDM, units, 100.0, n_root=4, static_levels=3, seed=3,
            region_left=(0.25, 0.25, 0.25), region_right=(0.75, 0.75, 0.75),
        )
        p = nested.particles()
        assert np.isclose(p.masses.max() / p.masses.min(), 512.0, rtol=1e-10)
