"""Passive-scalar transport: conservation guarantees and the zero-scalar
bitwise-identity contract.

``n_scalars`` adds ``scalar00..`` to the advected list, so scalars ride
the same consistent-transport path as chemical species: solver fluxes,
flux correction at coarse-fine faces, projection, prolongation, and the
defense ladder's floor repair.  The contract tested here is round-off
conservation through all of that — and that asking for zero scalars
changes nothing at all, bit for bit, on every execution backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Simulation, SimulationConfig
from repro.hydro.state import scalar_names
from repro.runtime import faults
from repro.runtime.faults import FaultInjector, FaultSpec
from repro.runtime.telemetry import read_events, telemetry_path


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    faults.clear()
    yield
    faults.clear()


def build_amr_sim(n_scalars: int, blob=(0.5, 0.5, 0.5), amp: float = 10.0,
                  backend: str | None = None) -> Simulation:
    """A refining blob advected across the box, with dyed scalars."""
    sim = Simulation(SimulationConfig(
        n_root=8, max_level=1, refine_overdensity=3.0, cfl=0.3,
        n_scalars=n_scalars, exec_backend=backend,
    ))
    bx, by, bz = blob
    sim.set_density(lambda x, y, z: 1 + amp * np.exp(
        -((x - bx) ** 2 + (y - by) ** 2 + (z - bz) ** 2) / 0.01))
    sim.set_field("internal", lambda x, y, z: np.full_like(x, 0.1))
    sim.set_field("vx", lambda x, y, z: np.full_like(x, 0.5))
    for i, name in enumerate(scalar_names(n_scalars)):
        # distinct dyes so cross-contamination would show up
        sim.set_field(name, lambda x, y, z, i=i: (i + 1.0) * np.exp(
            -((x - bx) ** 2 + (y - by) ** 2) / 0.02))
    sim.initialize()
    return sim


def root_mass(sim: Simulation, name: str) -> float:
    root = sim.hierarchy.root
    return float(root.fields[name][root.interior].sum()) * root.dx**3


def advance(sim: Simulation, steps: int) -> None:
    for _ in range(steps):
        sim.evolver.advance_root_step(10.0)


# ------------------------------------------------------------- conservation
class TestScalarConservation:
    def test_conserved_through_refluxing_and_regrids(self):
        sim = build_amr_sim(n_scalars=2)
        assert sim.hierarchy.max_level == 1  # the blob actually refines
        before = {n: root_mass(sim, n) for n in scalar_names(2)}
        advance(sim, 4)
        for name, m0 in before.items():
            assert root_mass(sim, name) == pytest.approx(m0, rel=1e-12)

    @settings(max_examples=4, deadline=None)
    @given(
        bx=st.floats(0.3, 0.7), amp=st.floats(5.0, 20.0),
    )
    def test_conservation_is_setup_independent(self, bx, amp):
        """Property: any blob position/contrast conserves dye mass across
        the full AMR step (fluxes + flux correction + projection)."""
        sim = build_amr_sim(n_scalars=1, blob=(bx, 0.5, 0.5), amp=amp)
        m0 = root_mass(sim, "scalar00")
        advance(sim, 2)
        assert root_mass(sim, "scalar00") == pytest.approx(m0, rel=1e-12)

    def test_kelvin_helmholtz_dye_conserved(self):
        from repro.problems import KelvinHelmholtz

        kh = KelvinHelmholtz(n_root=16)
        m0 = kh.scalar_mass()
        kh.run(t_end=0.2)
        assert kh.steps > 3
        assert kh.scalar_mass() == pytest.approx(m0, rel=1e-13)

    def test_rayleigh_taylor_dye_conserved_at_walls(self):
        from repro.problems import RayleighTaylor

        rt = RayleighTaylor(n=8)
        m0 = rt.scalar_mass()
        rt.run(t_end=0.5, max_steps=12)
        assert rt.steps > 3
        # reflecting walls: the mirrored-gravity ghost kick keeps wall
        # faces flux-free, so dye (and gas) mass stay at round-off
        assert rt.scalar_mass() == pytest.approx(m0, rel=1e-13)


# ------------------------------------------------------ floor-repair ledger
class TestFloorRepairAccounting:
    def _run_with_floor_repair(self, n_scalars: int, tmp_path) -> list[dict]:
        run_dir = str(tmp_path / f"repair{n_scalars}")
        sim = build_amr_sim(n_scalars=n_scalars)
        faults.install(FaultInjector([
            FaultSpec("nan_cell", level=0,
                      grid_id=sim.hierarchy.root.grid_id, step=0, count=4),
        ], seed=7))
        out = sim.make_controller(run_dir).run(10.0, max_root_steps=2)
        assert out["status"] == "max_steps"
        events = read_events(telemetry_path(run_dir))
        return [e for e in events
                if e["event"] == "defense" and e.get("rung") == "floor_repair"]

    def test_scalar_mass_delta_reported(self, tmp_path):
        repairs = self._run_with_floor_repair(2, tmp_path)
        assert repairs and repairs[-1]["ok"]
        assert "scalar_mass_delta" in repairs[-1]
        assert abs(repairs[-1]["scalar_mass_delta"]) < 1e-6

    def test_no_scalars_no_ledger_entry(self, tmp_path):
        repairs = self._run_with_floor_repair(0, tmp_path)
        assert repairs and repairs[-1]["ok"]
        assert "scalar_mass_delta" not in repairs[-1]


# --------------------------------------------------------- bitwise identity
def assert_hierarchies_identical(ha, hb):
    assert ha.grids_per_level() == hb.grids_per_level()
    for ga, gb in zip(ha.all_grids(), hb.all_grids()):
        for name, arr in ga.fields.array_items():
            np.testing.assert_array_equal(arr, gb.fields[name], err_msg=name)


class TestZeroScalarIdentity:
    def test_zero_scalars_allocates_nothing(self):
        sim = build_amr_sim(n_scalars=0)
        assert "scalar00" not in sim.hierarchy.root.fields
        assert tuple(sim.hierarchy.advected) == ()

    def test_scalar_names_compose_with_explicit_advected(self):
        sim = Simulation(SimulationConfig(
            n_root=8, advected=("HI",), n_scalars=2))
        assert tuple(sim.hierarchy.advected) == ("HI", "scalar00", "scalar01")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_bitwise_identical_without_scalars(self, backend):
        base = build_amr_sim(n_scalars=0, backend=None)
        other = build_amr_sim(n_scalars=0, backend=backend)
        advance(base, 2)
        advance(other, 2)
        assert_hierarchies_identical(base.hierarchy, other.hierarchy)

    def test_gas_state_independent_of_scalar_count(self):
        """Adding dye must not perturb the gas solution bitwise: scalars
        are strictly passive."""
        plain = build_amr_sim(n_scalars=0)
        dyed = build_amr_sim(n_scalars=2)
        advance(plain, 3)
        advance(dyed, 3)
        for name in ("density", "energy", "vx", "vy", "vz", "internal"):
            for ga, gb in zip(plain.hierarchy.all_grids(),
                              dyed.hierarchy.all_grids()):
                np.testing.assert_array_equal(
                    ga.fields[name], gb.fields[name], err_msg=name)
