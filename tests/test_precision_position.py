"""Tests for EPA positions and the precision boundary (relative offsets)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision import PositionDD, relative_offset
from repro.precision.doubledouble import DDArray


def test_single_point_construction():
    p = PositionDD([0.5, 0.25, 0.125])
    assert p.shape == (3,)
    np.testing.assert_array_equal(p.hi, [0.5, 0.25, 0.125])


def test_translate_by_tiny_offsets_preserved():
    # Deep-hierarchy requirement: offsets of 2^-40 of the box must survive
    p = PositionDD(np.full((100, 3), 1.0 / 3.0))
    tiny = 2.0**-40
    q = p.translate(tiny)
    d = relative_offset(q, p)
    np.testing.assert_array_equal(d, np.full((100, 3), tiny))


def test_translate_inplace_matches_translate():
    p = PositionDD(np.random.default_rng(1).random((10, 3)))
    q = p.translate(1e-20)
    p.translate_inplace(1e-20)
    np.testing.assert_array_equal(p.hi, q.hi)
    np.testing.assert_array_equal(p.lo, q.lo)


def test_midpoint():
    a = PositionDD([0.0])
    b = PositionDD([1.0])
    m = a.midpoint(b)
    assert m.hi[0] == 0.5 and m.lo[0] == 0.0


def test_midpoint_deep_cells():
    # midpoint of cell edges at level 45 must stay exact
    left = PositionDD([1.0 / 3.0]).translate(2.0**-45)
    right = PositionDD([1.0 / 3.0]).translate(2.0 ** -45 + 2.0**-46)
    m = left.midpoint(right)
    off = relative_offset(m, PositionDD([1.0 / 3.0]))
    assert off[0] == 2.0**-45 + 2.0**-47


def test_wrap_periodic():
    p = PositionDD([1.25, -0.25, 0.5])
    w = p.wrap_periodic(0.0, 1.0)
    np.testing.assert_allclose(w.hi, [0.25, 0.75, 0.5])


def test_wrap_periodic_preserves_lo():
    p = PositionDD([1.0 + 0.25], [1e-25]).wrap_periodic()
    d = relative_offset(p, PositionDD([0.25]))
    assert abs(d[0] - 1e-25) < 1e-40


def test_compare():
    a = PositionDD([0.5], [1e-30])
    b = PositionDD([0.5], [0.0])
    assert a.compare(b)[0] == 1
    assert b.compare(a)[0] == -1
    assert a.compare(a)[0] == 0
    assert b.compare(0.5)[0] == 0


def test_scaled():
    p = PositionDD([0.5, 1.0]).scaled(0.5)
    np.testing.assert_array_equal(p.hi, [0.25, 0.5])


def test_getitem_setitem():
    p = PositionDD(np.zeros((4, 3)))
    p[2] = PositionDD(np.array([[0.1, 0.2, 0.3]]))
    assert p.hi[2, 1] == 0.2
    q = p[2]
    assert q.hi.shape[-1] == 3


def test_dd_roundtrip():
    arr = DDArray(np.array([0.1, 0.2]), np.array([1e-20, -1e-20]))
    p = PositionDD.from_dd(arr)
    back = p.as_dd()
    np.testing.assert_array_equal(back.hi, arr.hi)
    np.testing.assert_array_equal(back.lo, arr.lo)


def test_relative_offset_beats_float64():
    """The motivating failure: float64 loses offsets at depth; EPA keeps them."""
    base = 2.0 / 3.0
    offset = 1e-17
    # float64 path loses the offset entirely (base + offset rounds to base):
    f64_result = (base + offset) - base
    assert f64_result != offset  # demonstrates the failure mode
    # EPA path preserves it exactly:
    p = PositionDD([base]).translate(offset)
    d = relative_offset(p, PositionDD([base]))
    assert d[0] == offset


@given(
    st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
    st.integers(min_value=20, max_value=100),
)
@settings(max_examples=50, deadline=None)
def test_offset_roundtrip_property(base, exponent):
    offset = 2.0**-exponent
    p = PositionDD([base]).translate(offset)
    d = relative_offset(p, PositionDD([base]))
    assert d[0] == offset


@given(st.lists(st.integers(min_value=10, max_value=80), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_accumulated_translations_reversible(exponents):
    p = PositionDD([0.37])
    for e in exponents:
        p.translate_inplace(2.0**-e)
    for e in exponents:
        p.translate_inplace(-(2.0**-e))
    d = relative_offset(p, PositionDD([0.37]))
    assert abs(d[0]) < 1e-30
