"""Tests for boundary filling, projection, flux correction and refinement."""

import numpy as np
import pytest

from repro.amr import Grid, Hierarchy, RefinementCriteria
from repro.amr.boundary import copy_from_siblings, interpolate_from_parent, set_boundary_values
from repro.amr.flux_correction import (
    accumulate_boundary_fluxes,
    apply_flux_correction,
    init_flux_accumulator,
)
from repro.amr.projection import project_child_to_parent
from repro.hydro import PPMSolver
from repro.hydro.state import fill_ghosts_periodic, total_energy


def _hierarchy_with_child(n_root=8, child_start=(8, 8, 8), child_dims=(8, 8, 8)):
    h = Hierarchy(n_root=n_root)
    # smooth root field
    root = h.root
    x, y, z = np.meshgrid(
        *[(np.arange(n_root + 6) - 2.5) / n_root] * 3, indexing="ij"
    )
    root.fields["density"][:] = 1.0 + 0.5 * np.sin(2 * np.pi * x)
    root.fields["internal"][:] = 2.0 + 0.1 * np.cos(2 * np.pi * y)
    root.fields["energy"][:] = root.fields["internal"]
    fill_ghosts_periodic(root.fields, 3)
    child = Grid(1, child_start, child_dims, n_root=n_root)
    h.add_grid(child, root)
    return h, root, child


class TestParentInterpolation:
    def test_ghosts_filled_interior_preserved(self):
        h, root, child = _hierarchy_with_child()
        child.fields["density"][child.interior] = 42.0
        interpolate_from_parent(child, root)
        ng = child.nghost
        assert np.all(child.fields["density"][child.interior] == 42.0)
        # ghosts now hold interpolated (finite, root-scale) values
        ghosts = child.fields["density"][0, :, :]
        assert np.all(np.isfinite(ghosts))
        assert np.all((ghosts > 0.3) & (ghosts < 1.7))

    def test_interpolation_smooth_accuracy(self):
        h, root, child = _hierarchy_with_child()
        interpolate_from_parent(child, root)
        # compare ghost values to the analytic field at child resolution
        ng = child.nghost
        xs = (child.start_index[0] - ng + np.arange(child.shape_with_ghosts[0]) + 0.5) * child.dx
        expected = 1.0 + 0.5 * np.sin(2 * np.pi * xs)
        got = child.fields["density"][:, ng + 4, ng + 4]
        # ghost layers only (first ng entries)
        assert np.abs(got[:ng] - expected[:ng]).max() < 0.06

    def test_time_interpolation(self):
        h, root, child = _hierarchy_with_child()
        root.save_old_state()
        from repro.precision.doubledouble import DoubleDouble

        root.time = DoubleDouble(1.0)
        root.fields["density"][:] *= 2.0  # new state doubled
        child.time = DoubleDouble(0.5)  # halfway
        interpolate_from_parent(child, root)
        # ghost value should be ~1.5x the old field
        ng = child.nghost
        xs = (child.start_index[0] - ng + 0.5) * child.dx
        expected_old = 1.0 + 0.5 * np.sin(2 * np.pi * xs)
        got = child.fields["density"][0, ng + 4, ng + 4]
        assert abs(got / expected_old - 1.5) < 0.05


class TestSiblingCopy:
    def test_sibling_overrides_ghosts(self):
        h = Hierarchy(n_root=8)
        a = Grid(1, (4, 4, 4), (4, 8, 8), n_root=8)
        b = Grid(1, (8, 4, 4), (4, 8, 8), n_root=8)
        h.add_grid(a, h.root)
        h.add_grid(b, h.root)
        b.fields["density"][b.interior] = 7.0
        copy_from_siblings(a, [b])
        ng = a.nghost
        # a's high-x ghost zone overlaps b's interior
        assert np.all(a.fields["density"][ng + 4 :, ng : ng + 8, ng : ng + 8] == 7.0)

    def test_set_boundary_values_level(self):
        h, root, child = _hierarchy_with_child()
        set_boundary_values(h, 0)
        set_boundary_values(h, 1)
        assert np.all(np.isfinite(child.fields["density"]))


class TestProjection:
    def test_child_average_overwrites_parent(self):
        h, root, child = _hierarchy_with_child()
        child.fields["density"][child.interior] = 5.0
        child.fields["vx"][child.interior] = 1.0
        child.fields["internal"][child.interior] = 3.0
        child.fields["energy"][child.interior] = 3.5
        project_child_to_parent(child, root)
        ng = root.nghost
        covered = root.fields["density"][ng + 4 : ng + 8, ng + 4 : ng + 8, ng + 4 : ng + 8]
        np.testing.assert_allclose(covered, 5.0)
        np.testing.assert_allclose(
            root.fields["vx"][ng + 4 : ng + 8, ng + 4 : ng + 8, ng + 4 : ng + 8], 1.0
        )

    def test_projection_conserves_mass(self):
        h, root, child = _hierarchy_with_child()
        rng = np.random.default_rng(0)
        child.fields["density"][child.interior] = 1.0 + rng.random((8, 8, 8))
        mass_fine = child.fields["density"][child.interior].sum() * child.dx**3
        project_child_to_parent(child, root)
        ng = root.nghost
        covered = root.fields["density"][ng + 4 : ng + 8, ng + 4 : ng + 8, ng + 4 : ng + 8]
        mass_coarse = covered.sum() * root.dx**3
        assert np.isclose(mass_fine, mass_coarse, rtol=1e-12)


class TestRefinementCriteria:
    def _grid(self, rho=1.0):
        g = Grid(0, (0, 0, 0), (8, 8, 8), n_root=8)
        g.allocate()
        g.fields["density"][:] = rho
        return g

    def test_overdensity(self):
        g = self._grid(1.0)
        g.fields["density"][g.interior][4, 4, 4] = 10.0
        crit = RefinementCriteria(overdensity_threshold=5.0)
        flags = crit.flag_cells(g)
        assert flags[4, 4, 4]
        assert flags.sum() == 1

    def test_gas_mass(self):
        g = self._grid(1.0)
        crit = RefinementCriteria(gas_mass_threshold=0.5 * g.dx**3)
        flags = crit.flag_cells(g)
        assert flags.all()  # every cell has mass dx^3 > threshold

    def test_mass_threshold_level_scaling(self):
        g0 = self._grid(1.0)
        g1 = Grid(1, (0, 0, 0), (8, 8, 8), n_root=8)
        g1.allocate()
        g1.fields["density"][:] = 1.0
        # exponent < 0 lowers the threshold on finer levels
        crit = RefinementCriteria(gas_mass_threshold=0.5 * g0.dx**3, level_exponent=-1.0)
        assert crit._mass_threshold(1.0, g1) == 0.5

    def test_dm_mass(self):
        g = self._grid(1.0)
        dm = np.zeros((8, 8, 8))
        dm[2, 2, 2] = 100.0
        crit = RefinementCriteria(dm_mass_threshold=50.0 * g.dx**3)
        flags = crit.flag_cells(g, dm_density=dm)
        assert flags[2, 2, 2] and flags.sum() == 1

    def test_jeans(self):
        from repro.cosmology import CodeUnits, STANDARD_CDM

        units = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        g = self._grid(1.0)
        # very cold, dense cell: tiny Jeans length -> flagged
        e_cold = units.energy_from_temperature(1.0, 1.22, units.a_initial)
        g.fields["internal"][:] = 1e6  # hot everywhere else
        g.fields["density"][g.interior][1, 1, 1] = 1e6
        g.fields["internal"][g.interior][1, 1, 1] = e_cold
        crit = RefinementCriteria(jeans_number=4.0, units=units, a=units.a_initial)
        flags = crit.flag_cells(g)
        assert flags[1, 1, 1]

    def test_max_level_stops(self):
        g = self._grid(10.0)
        g2 = Grid(2, (0, 0, 0), (8, 8, 8), n_root=8)
        g2.allocate()
        g2.fields["density"][:] = 10.0
        crit = RefinementCriteria(overdensity_threshold=1.0, max_level=2)
        assert crit.flag_cells(g).any()
        assert not crit.flag_cells(g2).any()


class TestFluxCorrection:
    def test_accumulator_shapes(self):
        h, root, child = _hierarchy_with_child()
        set_boundary_values(h, 0)
        set_boundary_values(h, 1)
        solver = PPMSolver()
        fluxes = solver.step(child.fields, child.dx, 1e-4)
        accumulate_boundary_fluxes(child, fluxes)
        acc = child.flux_accumulator
        assert acc["x"]["lo"]["density"].shape == (8, 8)

    def test_correction_conserves_total_mass(self):
        """Parent + child evolved together: after correction + projection the
        total mass in the composite solution is conserved."""
        h, root, child = _hierarchy_with_child()
        # put structure inside the child region so flux flows across its edge
        ng = root.nghost
        set_boundary_values(h, 0)
        root.fields["vx"][:] = 0.3
        root.fields["energy"][:] = total_energy(root.fields)
        set_boundary_values(h, 0)
        interpolate_from_parent(child, root)
        # child interior from parent (consistent start)
        from repro.amr.rebuild import _fill_new_grid

        _fill_new_grid(child, root, [])
        solver = PPMSolver()

        def composite_mass():
            covered = h.covering_mask(root)
            rho_r = root.field_view("density")
            m = (rho_r * ~covered).sum() * root.dx**3
            m += child.field_view("density").sum() * child.dx**3
            return m

        m0 = composite_mass()
        dt = 2e-3
        root.save_old_state()
        root.last_fluxes = solver.step(root.fields, root.dx, dt)
        from repro.precision.doubledouble import DoubleDouble

        root.time = DoubleDouble(dt)
        init_flux_accumulator(child)
        for sub in range(2):
            set_boundary_values(h, 1)
            fl = solver.step(child.fields, child.dx, dt / 2)
            accumulate_boundary_fluxes(child, fl)
            child.time = DoubleDouble(child.time + dt / 2)
        apply_flux_correction(root, child)
        project_child_to_parent(child, root)
        m1 = composite_mass()
        assert abs(m1 - m0) < 1e-10 * m0
