"""Tests for the PS mass function, phase diagrams and thermal balance."""

import numpy as np
import pytest

from repro import constants as const
from repro.chemistry import SPECIES, primordial_initial_fractions
from repro.chemistry.species import SPECIES_NAMES
from repro.chemistry.thermal import (
    cooling_vs_freefall,
    equilibrium_temperature,
    net_cooling,
)
from repro.cosmology import PowerSpectrum, STANDARD_CDM
from repro.cosmology.mass_function import PressSchechter


def _n_of(n_h=1.0, x_e=2e-4, f_h2=2e-6):
    fr = primordial_initial_fractions(x_e=x_e, f_h2=f_h2)
    rho = n_h * const.HYDROGEN_MASS / const.HYDROGEN_MASS_FRACTION
    return {
        s: np.atleast_1d(fr[s] * rho / (SPECIES[s].mass_amu * const.HYDROGEN_MASS))
        for s in SPECIES_NAMES
    }, rho


@pytest.fixture(scope="module")
def ps():
    return PressSchechter(PowerSpectrum(STANDARD_CDM))


class TestPressSchechter:
    def test_multiplicity_normalised_shape(self, ps):
        nu = np.linspace(0.01, 8, 400)
        f = ps.multiplicity(nu)
        # integral of f dnu/nu over all nu = 1 (all mass in some halo)
        integral = np.trapezoid(f / nu, nu)
        assert integral == pytest.approx(1.0, rel=0.05)

    def test_small_halos_common_at_high_z(self, ps):
        """Bottom-up: at z=20, 1e5-Msun haloes outnumber 1e8 ones hugely."""
        dn_small = ps.dn_dlnM(1e5, 20.0)
        dn_big = ps.dn_dlnM(1e8, 20.0)
        assert dn_small > 100 * max(dn_big, 1e-300)

    def test_collapsed_fraction_grows_with_time(self, ps):
        f_early = ps.collapsed_fraction(5e5, 40.0)
        f_late = ps.collapsed_fraction(5e5, 15.0)
        assert f_late > f_early

    def test_paper_halo_abundance(self, ps):
        """5e5 Msun haloes must be rare-but-findable at z~20: the paper had
        to pick a special box/realisation, but not a 10-sigma fluke."""
        nu = ps.nu(5e5, 20.0)
        assert 1.0 < nu < 6.0  # a 1-6 sigma peak

    def test_expected_halo_count_positive(self, ps):
        n = ps.expected_halos_in_box(5e5, 20.0, box_mpc_h=1.0)
        assert n > 0


class TestPhaseDiagram:
    def _hierarchy(self):
        from repro.amr import Hierarchy
        from repro.amr.boundary import set_boundary_values

        h = Hierarchy(n_root=8)
        rng = np.random.default_rng(0)
        root = h.root
        root.fields["density"][root.interior] = 10.0 ** rng.uniform(-1, 2, (8, 8, 8))
        root.fields["internal"][root.interior] = 10.0 ** rng.uniform(-2, 1, (8, 8, 8))
        set_boundary_values(h, 0)
        return h

    def test_mass_conserved_in_histogram(self):
        from repro.analysis.phase import phase_diagram

        h = self._hierarchy()
        d = phase_diagram(h, x_field="density", y_field="specific_energy", bins=16)
        total = h.root.field_view("density").sum() * h.root.dx**3
        assert d["mass"].sum() == pytest.approx(total, rel=1e-10)

    def test_units_fields(self):
        from repro.analysis.phase import phase_diagram, phase_summary
        from repro.cosmology import CodeUnits, STANDARD_CDM

        units = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        h = self._hierarchy()
        d = phase_diagram(h, units=units, a=units.a_initial,
                          x_field="number_density", y_field="temperature")
        s = phase_summary(d)
        assert np.isfinite(s["log_x_mean"]) and np.isfinite(s["log_y_mean"])
        assert 0 < s["mass_fraction_in_peak_bin"] <= 1

    def test_needs_units_for_physical_fields(self):
        from repro.analysis.phase import phase_diagram

        with pytest.raises(ValueError):
            phase_diagram(self._hierarchy(), x_field="temperature")


class TestThermalBalance:
    def test_equilibrium_bracket_consistent(self):
        """equilibrium_temperature returns the sign-change point: net
        cooling is positive just above it and negative just below."""
        n, _ = _n_of(n_h=1.0, x_e=1e-3)
        z = 20.0
        t_eq = equilibrium_temperature(n, z).item()
        assert net_cooling(n, np.atleast_1d(3.0 * t_eq), z).item() > 0
        assert net_cooling(n, np.atleast_1d(t_eq / 3.0), z).item() < 0

    def test_equilibrium_below_cmb(self):
        """With line/recombination channels active the equilibrium sits at
        or below T_cmb (Compton heating is the only heat source)."""
        n, _ = _n_of(n_h=1.0, x_e=1e-3)
        z = 20.0
        t_cmb = const.CMB_TEMPERATURE_Z0 * (1 + z)
        t_eq = equilibrium_temperature(n, z).item()
        assert 1.0 < t_eq <= 1.2 * t_cmb

    def test_net_cooling_signs(self):
        n, _ = _n_of(x_e=1e-2)
        z = 20.0
        t_cmb = const.CMB_TEMPERATURE_Z0 * (1 + z)
        assert net_cooling(n, np.atleast_1d(10 * t_cmb), z).item() > 0
        assert net_cooling(n, np.atleast_1d(1.5), z).item() < 0

    def test_rees_ostriker_crossing(self):
        """Without H2 the halo gas cannot cool in a free-fall time; with
        f_H2 ~ 1e-3 it can — the paper's entire premise."""
        z = 20.0
        T = np.atleast_1d(1000.0)
        n_no_h2, rho = _n_of(n_h=100.0, x_e=1e-4, f_h2=1e-9)
        n_h2, _ = _n_of(n_h=100.0, x_e=1e-4, f_h2=2e-3)
        ratio_no = cooling_vs_freefall(n_no_h2, T, rho, z).item()
        ratio_h2 = cooling_vs_freefall(n_h2, T, rho, z).item()
        assert ratio_no > 1.0, "no-H2 gas must be unable to cool"
        assert ratio_h2 < 1.0, "H2-enriched gas must cool within t_ff"

    def test_cooling_time_map(self):
        from repro.amr import Hierarchy
        from repro.chemistry.species import ADVECTED_SPECIES
        from repro.chemistry.thermal import cooling_time_map
        from repro.cosmology import CodeUnits, STANDARD_CDM

        units = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        h = Hierarchy(n_root=4, advected=list(ADVECTED_SPECIES))
        fr = primordial_initial_fractions()
        root = h.root
        root.fields["density"][:] = 0.06
        for s, f in fr.items():
            root.fields[s][:] = f * root.fields["density"]
        root.fields["internal"][:] = units.energy_from_temperature(500.0, 1.22, 1.0)
        maps = cooling_time_map(h, units, units.a_initial)
        assert len(maps) == 1
        assert np.all(maps[0] > 0)
