"""Run-service tests: registry, ledger, preempt/resume identity, chaos.

The expensive acceptance scenarios run real simulations through a live
daemon: a preempted-and-resumed run must be bitwise identical to an
uninterrupted one (serial and process exec backends), and a poisoned run
must burn down inside its own subprocess while co-scheduled clean runs
finish untouched.
"""

import json
import os
import threading
import time

import pytest

from repro.exec import LedgerError, WorkerLedger
from repro.runtime.checkpoint_policy import CheckpointPolicy
from repro.runtime.telemetry import (
    JsonlFollower,
    follow_events,
    read_events,
)
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    PREEMPTED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    IllegalTransitionError,
    InProcessLauncher,
    RunRegistry,
    RunService,
    ServiceClient,
    UnknownRunError,
)
from repro.service.specs import RunJob


def blob_spec(max_steps=12, **overrides):
    """The small deterministic self-gravitating workload the runtime
    tests evolve, expressed as a service run spec."""
    spec = {
        "problem": "simulation",
        "t_end": 0.5,
        "kwargs": {"n_root": 8, "max_level": 1, "self_gravity": True,
                   "refine_overdensity": 3.0, "g_code": 2.0, "cfl": 0.3},
        "preset": "blob",
        "preset_args": {"n_particles": 20},
        "checkpoint_every": 2,
        "keep_last": 3,
        "max_steps": max_steps,
    }
    spec.update(overrides)
    return spec


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_submit_assigns_monotonic_ids(self, tmp_path):
        registry = RunRegistry(tmp_path)
        a = registry.submit({"problem": "simulation"})
        b = registry.submit({"problem": "simulation"})
        assert (a.run_id, b.run_id) == ("r000001", "r000002")
        assert a.state == QUEUED

    def test_spec_is_persisted_verbatim(self, tmp_path):
        registry = RunRegistry(tmp_path)
        spec = blob_spec()
        record = registry.submit(spec)
        assert registry.load_spec(record.run_id) == spec

    def test_legal_lifecycle(self, tmp_path):
        registry = RunRegistry(tmp_path)
        rid = registry.submit({}).run_id
        for state in (RUNNING, PREEMPTED, RUNNING, DONE):
            registry.transition(rid, state)
        record = registry.load(rid)
        assert record.state == DONE
        assert record.attempts == 2
        assert record.preemptions == 1
        assert record.terminal

    @pytest.mark.parametrize("path,bad", [
        ((), RUNNING and PREEMPTED),          # QUEUED -> PREEMPTED
        ((), DONE),                            # QUEUED -> DONE
        ((RUNNING, DONE), RUNNING),            # DONE is terminal
        ((RUNNING, FAILED), QUEUED),           # FAILED is terminal
        ((CANCELLED,), RUNNING),               # CANCELLED is terminal
        ((RUNNING, PREEMPTED), DONE),          # must resume first
    ])
    def test_illegal_transitions_raise(self, tmp_path, path, bad):
        registry = RunRegistry(tmp_path)
        rid = registry.submit({}).run_id
        for state in path:
            registry.transition(rid, state)
        before = registry.load(rid).state
        with pytest.raises(IllegalTransitionError):
            registry.transition(rid, bad)
        assert registry.load(rid).state == before  # atomic: unchanged

    def test_unknown_run_raises(self, tmp_path):
        registry = RunRegistry(tmp_path)
        with pytest.raises(UnknownRunError):
            registry.load("r999999")
        with pytest.raises(UnknownRunError):
            registry.transition("r999999", RUNNING)

    def test_journal_records_every_edge(self, tmp_path):
        registry = RunRegistry(tmp_path)
        rid = registry.submit({}).run_id
        registry.transition(rid, RUNNING)
        registry.transition(rid, DONE)
        events = read_events(registry.journal_path)
        kinds = [e["event"] for e in events]
        assert kinds == ["submit", "transition", "transition"]
        assert [e["to"] for e in events[1:]] == [RUNNING, DONE]

    def test_state_file_always_valid_json(self, tmp_path):
        # the atomic replace means a reader never sees a torn state.json
        registry = RunRegistry(tmp_path)
        rid = registry.submit({}).run_id
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    registry.load(rid)
                except UnknownRunError:
                    errors.append("missing")
                except Exception as exc:
                    errors.append(repr(exc))

        thread = threading.Thread(target=reader)
        thread.start()
        for _ in range(30):
            registry.transition(rid, RUNNING)
            registry.transition(rid, PREEMPTED)
        stop.set()
        thread.join()
        assert errors == []


class TestCrashRestart:
    def test_recover_requeues_running_without_checkpoint(self, tmp_path):
        registry = RunRegistry(tmp_path)
        rid = registry.submit({}).run_id
        registry.transition(rid, RUNNING)
        # simulate daemon crash: new registry instance over the same root
        healed = RunRegistry(tmp_path).recover()
        assert healed == [(rid, QUEUED)]
        assert RunRegistry(tmp_path).load(rid).state == QUEUED

    def test_recover_preempts_running_with_checkpoint(self, tmp_path):
        registry = RunRegistry(tmp_path)
        rid = registry.submit(blob_spec(max_steps=3)).run_id
        # produce a real checkpoint in the run's controller dir
        RunJob(blob_spec(max_steps=3),
               registry.controller_dir(rid)).execute()
        registry.transition(rid, RUNNING)
        healed = RunRegistry(tmp_path).recover()
        assert healed == [(rid, PREEMPTED)]

    def test_recover_leaves_terminal_states_alone(self, tmp_path):
        registry = RunRegistry(tmp_path)
        rid = registry.submit({}).run_id
        registry.transition(rid, RUNNING)
        registry.transition(rid, DONE)
        assert RunRegistry(tmp_path).recover() == []
        # and the state machine still rejects illegal edges afterwards
        with pytest.raises(IllegalTransitionError):
            RunRegistry(tmp_path).transition(rid, RUNNING)

    def test_ids_keep_monotonic_across_restart(self, tmp_path):
        RunRegistry(tmp_path).submit({})
        assert RunRegistry(tmp_path).submit({}).run_id == "r000002"


# ------------------------------------------------------------------ ledger
class TestWorkerLedger:
    def test_lease_and_release(self):
        ledger = WorkerLedger(4)
        ledger.lease("a", 3)
        assert ledger.available() == 1
        assert ledger.release("a") == 3
        assert ledger.available() == 4

    def test_overcommit_raises(self):
        ledger = WorkerLedger(4)
        ledger.lease("a", 3)
        with pytest.raises(LedgerError):
            ledger.lease("b", 2)
        ledger.lease("b", 1)  # exact fit is fine

    def test_double_lease_raises(self):
        ledger = WorkerLedger(4)
        ledger.lease("a", 1)
        with pytest.raises(LedgerError):
            ledger.lease("a", 1)

    def test_release_is_idempotent(self):
        ledger = WorkerLedger(2)
        assert ledger.release("ghost") == 0

    def test_snapshot(self):
        ledger = WorkerLedger(4)
        ledger.lease("b", 1)
        ledger.lease("a", 2)
        assert ledger.snapshot() == {
            "total": 4, "in_use": 3, "leases": {"a": 2, "b": 1}}


# ----------------------------------------------------- telemetry tolerance
class TestTornTelemetry:
    def test_read_events_skips_torn_line_mid_file(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text('{"event": "start"}\n'
                        '{"event": "step", "st'      # torn by a crash
                        '\n{"event": "checkpoint"}\n')
        events = read_events(str(path))
        assert [e["event"] for e in events] == ["start", "checkpoint"]

    def test_follower_buffers_partial_lines(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        follower = JsonlFollower(str(path))
        assert follower.poll() == []          # file does not exist yet
        with open(path, "w") as fh:
            fh.write('{"event": "a"}\n{"event"')
        assert [e["event"] for e in follower.poll()] == ["a"]
        with open(path, "a") as fh:
            fh.write(': "b"}\n')
        assert [e["event"] for e in follower.poll()] == ["b"]
        assert follower.poll() == []

    def test_follow_events_generator_stops_when_drained(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with open(path, "w") as fh:
            fh.write('{"event": "a"}\n{"event": "b"}\n')
        seen = [e["event"] for e in follow_events(
            str(path), poll_interval=0.01, stop=lambda: True)]
        assert seen == ["a", "b"]


# ------------------------------------------------- checkpoint retention pin
class TestResumeAnchorPin:
    def test_rotation_never_deletes_the_resume_anchor(self, tmp_path):
        # preempt a run, then resume with keep_last=1 and checkpoints on
        # every step: the pair the resume restarted from must survive
        # until a newer pair lands, however aggressive the retention
        run_dir = str(tmp_path / "run")
        spec = blob_spec(max_steps=10, checkpoint_every=1, keep_last=1)
        job = RunJob(spec, run_dir)
        job.request_drain("test")  # drains at the first step boundary
        first = job.execute()
        assert first["outcome"] == "preempted"
        resumed = RunJob(spec, run_dir).execute()
        assert resumed["outcome"] == "done"
        assert CheckpointPolicy.latest(run_dir) is not None


# ----------------------------------------------------------- daemon basics
def start_service(tmp_path, **kwargs):
    kwargs.setdefault("total_workers", 2)
    kwargs.setdefault("launcher", "inprocess")
    kwargs.setdefault("tick_interval", 0.02)
    service = RunService(str(tmp_path / "svc"), **kwargs)
    service.start()
    return service, ServiceClient(service.root)


def wait_for_state(client, run_id, state, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        entry = client.status(run_id)
        if entry["state"] == state:
            return entry
        if entry["state"] in TERMINAL_STATES:
            raise AssertionError(
                f"{run_id} reached {entry['state']} while waiting for "
                f"{state}: {entry}")
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {run_id} -> {state}")


def wait_for_checkpoint(service, run_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if service.registry.has_checkpoint(run_id):
            return
        time.sleep(0.02)
    raise AssertionError(f"no checkpoint appeared for {run_id}")


class TestDaemon:
    def test_ping_reports_budget(self, tmp_path):
        service, client = start_service(tmp_path)
        try:
            reply = client.ping()
            assert reply["workers"]["total"] == 2
        finally:
            service.shutdown()

    def test_submit_run_done_roundtrip(self, tmp_path):
        service, client = start_service(tmp_path)
        try:
            rid = client.submit(blob_spec(max_steps=4))
            entry = client.wait(rid, timeout=120)[rid]
            assert entry["state"] == DONE
            assert entry["result"]["outcome"] == "done"
            assert entry["result"]["steps"] == 4
        finally:
            service.shutdown()

    def test_cancel_queued_run(self, tmp_path):
        service, client = start_service(tmp_path, total_workers=1)
        try:
            blocker = client.submit(blob_spec(max_steps=8))
            victim = client.submit(blob_spec(max_steps=8))
            wait_for_state(client, blocker, RUNNING)
            client.cancel(victim)
            assert client.status(victim)["state"] == CANCELLED
            client.cancel(blocker)
            entry = client.wait(blocker, timeout=120)[blocker]
            assert entry["state"] == CANCELLED
        finally:
            service.shutdown()

    def test_unknown_ops_and_runs_are_refused(self, tmp_path):
        from repro.service import ServiceError

        service, client = start_service(tmp_path)
        try:
            with pytest.raises(ServiceError, match="unknown run"):
                client.cancel("r999999")
            with pytest.raises(ServiceError, match="unknown op"):
                client.request("frobnicate")
        finally:
            service.shutdown()

    def test_worker_budget_is_respected(self, tmp_path):
        service, client = start_service(tmp_path, total_workers=1)
        try:
            first = client.submit(blob_spec(max_steps=6))
            second = client.submit(blob_spec(max_steps=6))
            wait_for_state(client, first, RUNNING)
            assert client.status(second)["state"] == QUEUED
            assert service.ledger.in_use() == 1
            entries = client.wait([first, second], timeout=240)
            assert all(e["state"] == DONE for e in entries.values())
        finally:
            service.shutdown()

    def test_telemetry_multiplexed_into_journal(self, tmp_path):
        service, client = start_service(tmp_path)
        try:
            rid = client.submit(blob_spec(max_steps=3))
            client.wait(rid, timeout=120)
        finally:
            service.shutdown()
        muxed = [e for e in read_events(service.registry.journal_path)
                 if e["event"] == "run_telemetry" and e["run"] == rid]
        kinds = {e["record"]["event"] for e in muxed}
        assert "step" in kinds

    def test_logs_op_returns_run_telemetry(self, tmp_path):
        service, client = start_service(tmp_path)
        try:
            rid = client.submit(blob_spec(max_steps=3))
            client.wait(rid, timeout=120)
            reply = client.logs(rid, n=5)
            assert reply["total"] > 0
            assert len(reply["events"]) <= 5
        finally:
            service.shutdown()

    def test_inprocess_launcher_refuses_faulty_specs(self):
        with pytest.raises(ValueError, match="process-global"):
            InProcessLauncher().launch(
                "r000001", blob_spec(faults="nan_cell:level=0"), "/tmp/x")


class TestPriorityScheduling:
    def test_high_priority_preempts_lower(self, tmp_path):
        service, client = start_service(tmp_path, total_workers=1)
        try:
            low = client.submit(blob_spec(max_steps=10), priority=0)
            wait_for_state(client, low, RUNNING)
            wait_for_checkpoint(service, low)
            high = client.submit(blob_spec(max_steps=4), priority=5)
            entry = client.wait(high, timeout=240)[high]
            assert entry["state"] == DONE
            low_entry = client.wait(low, timeout=240)[low]
            assert low_entry["state"] == DONE
            assert low_entry["preemptions"] >= 1
            # the preempted run still produced the full trajectory
            assert low_entry["result"]["steps"] == 10
        finally:
            service.shutdown()


# --------------------------------------------- preempt/resume == identity
class TestPreemptResumeIdentity:
    def _identity_roundtrip(self, tmp_path, launcher, backend):
        overrides = {}
        if backend != "serial":
            overrides = {"kwargs": {**blob_spec()["kwargs"],
                                    "exec_backend": backend, "workers": 2}}
        spec = blob_spec(max_steps=10, **overrides)
        service, client = start_service(
            tmp_path, total_workers=4, launcher=launcher,
            tick_interval=0.05)
        try:
            reference = client.submit(spec, tenant="ref")
            victim = client.submit(spec, tenant="victim")
            wait_for_state(client, victim, RUNNING)
            wait_for_checkpoint(service, victim)
            client.preempt(victim)
            entries = client.wait([reference, victim], timeout=300)
        finally:
            service.shutdown()
        ref, vic = entries[reference], entries[victim]
        assert ref["state"] == DONE and vic["state"] == DONE
        assert vic["preemptions"] >= 1, "preemption never landed"
        assert ref["preemptions"] == 0
        assert vic["result"]["fingerprint"] == \
            ref["result"]["fingerprint"], \
            "preempted-and-resumed run diverged from uninterrupted one"

    def test_identity_serial_backend_thread_drain(self, tmp_path):
        self._identity_roundtrip(tmp_path, "inprocess", "serial")

    def test_identity_serial_backend_sigint_drain(self, tmp_path):
        self._identity_roundtrip(tmp_path, "subprocess", "serial")

    def test_identity_process_backend_sigint_drain(self, tmp_path):
        self._identity_roundtrip(tmp_path, "subprocess", "process")


# ------------------------------------------------------------------- chaos
class TestChaosContainment:
    def test_poisoned_run_is_contained(self, tmp_path):
        """A run carrying nan_cell + checkpoint_truncate + worker_kill
        burns down inside its own subprocess: it reaches a terminal
        state with its rung trail in the service journal, while
        co-scheduled clean runs finish with zero rollbacks and matching
        fingerprints."""
        clean = blob_spec(max_steps=6, kwargs={
            **blob_spec()["kwargs"], "exec_backend": "process",
            "workers": 2})
        poison = dict(clean)
        poison["faults"] = ("nan_cell:level=0,grid=0,step=3,count=99;"
                            "checkpoint_truncate:step=4;"
                            "worker_kill:step=5,count=1")
        poison["fault_seed"] = 7
        service, client = start_service(
            tmp_path, total_workers=4, launcher="subprocess",
            tick_interval=0.05)
        try:
            poisoned = client.submit(poison, tenant="chaos")
            clean_a = client.submit(clean, tenant="clean")
            clean_b = client.submit(clean, tenant="clean")
            entries = client.wait([poisoned, clean_a, clean_b],
                                  timeout=420)
        finally:
            service.shutdown()

        assert entries[poisoned]["state"] in TERMINAL_STATES
        for rid in (clean_a, clean_b):
            assert entries[rid]["state"] == DONE
            assert entries[rid]["result"]["recoveries"] == 0, \
                "a clean run rolled back — chaos leaked across runs"
        assert entries[clean_a]["result"]["fingerprint"] == \
            entries[clean_b]["result"]["fingerprint"]

        # the poisoned run's defense-ladder trail is in the journal
        trail = [
            e for e in read_events(service.registry.journal_path)
            if e["event"] == "run_telemetry" and e["run"] == poisoned
            and e["record"]["event"] in ("defense", "recovery", "rollback")
        ]
        assert trail, "no rung trail for the poisoned run in the journal"

    def test_worker_result_file_is_atomic(self, tmp_path):
        # a torn result.json must read as "no result yet", not garbage:
        # the launcher only trusts a complete record
        from repro.service.launcher import SubprocessHandle

        class FakeProc:
            returncode = 3

            def poll(self):
                return 3

        run_dir = tmp_path / "reg" / "run"
        run_dir.mkdir(parents=True)
        (tmp_path / "reg" / "result.json").write_text('{"outcome": "do')
        handle = SubprocessHandle("r1", FakeProc(), str(run_dir))
        result = handle.poll()
        assert result["outcome"] == "failed"
        assert "without a result" in result["error"]


# ------------------------------------------------------------- supervision
def tight_policy(**overrides):
    """A supervision policy scaled to test time: fixed short staleness
    deadline (floor == ceiling, so calibration cannot stretch it), short
    grace, fast requeue backoff."""
    from repro.runtime.supervision import SupervisionPolicy

    kwargs = dict(deadline_floor=4.0, deadline_ceiling=4.0,
                  grace_seconds=0.5, max_strikes=3,
                  backoff_base=0.05, backoff_cap=0.2)
    kwargs.update(overrides)
    return SupervisionPolicy(**kwargs)


class TestSupervision:
    def _hang_kill_resume_identity(self, tmp_path, backend):
        """Acceptance: a run hung by an injected fault is detected,
        killed, requeued with backoff and resumed bit-exactly."""
        overrides = {}
        if backend != "serial":
            overrides = {"kwargs": {**blob_spec()["kwargs"],
                                    "exec_backend": backend, "workers": 2}}
        clean = blob_spec(max_steps=8, **overrides)
        reference = RunJob(clean, str(tmp_path / "ref")).execute()
        assert reference["outcome"] == "done"

        hung = dict(clean)
        # wedge episode 1 inside root step 3 for longer than any drain
        # can wait; episode 2 (the supervised requeue) runs clean
        hung["faults"] = "hang:level=0,step=3,seconds=120,attempt=1"
        service, client = start_service(
            tmp_path, total_workers=2, launcher="subprocess",
            tick_interval=0.05, supervision=tight_policy())
        try:
            rid = client.submit(hung, tenant="chaos")
            entry = client.wait(rid, timeout=300)[rid]
        finally:
            service.shutdown()
        assert entry["state"] == DONE
        assert entry["attempts"] >= 2, "the hung episode was never killed"
        assert entry["result"]["fingerprint"] == reference["fingerprint"], \
            "supervised kill-resume diverged from an uninterrupted run"
        events = read_events(service.registry.journal_path)
        kinds = {e["event"] for e in events if e.get("run") == rid}
        assert "stall_detected" in kinds
        assert "supervisor_kill" in kinds
        assert "stall_requeue" in kinds

    def test_hang_kill_resume_identity_serial(self, tmp_path):
        self._hang_kill_resume_identity(tmp_path, "serial")

    def test_hang_kill_resume_identity_process(self, tmp_path):
        self._hang_kill_resume_identity(tmp_path, "process")

    def test_io_stall_contained_and_tick_loop_stays_live(self, tmp_path):
        """A checkpoint write wedged on dead storage stalls only its own
        run: the daemon tick keeps scheduling, a co-scheduled clean run
        finishes untouched, and the stalled run recovers on attempt 2."""
        clean = blob_spec(max_steps=6)
        stalled = dict(clean)
        stalled["faults"] = "io_stall:step=2,seconds=120,attempt=1"
        service, client = start_service(
            tmp_path, total_workers=2, launcher="subprocess",
            tick_interval=0.05, supervision=tight_policy())
        try:
            bad = client.submit(stalled, tenant="chaos")
            good = client.submit(clean, tenant="clean")
            good_entry = client.wait(good, timeout=120)[good]
            assert good_entry["state"] == DONE, \
                "clean run starved behind an io_stall — tick loop wedged"
            assert good_entry["preemptions"] == 0
            bad_entry = client.wait(bad, timeout=300)[bad]
        finally:
            service.shutdown()
        assert bad_entry["state"] == DONE
        assert bad_entry["attempts"] >= 2
        assert bad_entry["result"]["fingerprint"] == \
            good_entry["result"]["fingerprint"]

    def test_retry_budget_exhaustion_quarantines(self, tmp_path):
        """A run that hangs on every attempt walks the full strike
        ladder into quarantine, with the trail journalled."""
        spec = blob_spec(max_steps=8)
        spec["faults"] = "hang:level=0,step=1,seconds=120,count=99"
        service, client = start_service(
            tmp_path, total_workers=2, launcher="subprocess",
            tick_interval=0.05,
            supervision=tight_policy(max_strikes=2))
        try:
            rid = client.submit(spec, tenant="chaos")
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                entry = client.status(rid)
                if entry["state"] in TERMINAL_STATES:
                    break
                time.sleep(0.1)
        finally:
            service.shutdown()
        assert entry["state"] == FAILED
        assert entry["note"] == "stalled"
        assert entry["strikes"] == 2
        events = [e for e in read_events(service.registry.journal_path)
                  if e.get("run") == rid]
        kinds = [e["event"] for e in events]
        assert kinds.count("stall_detected") >= 2
        assert "stall_requeue" in kinds
        assert "quarantined" in kinds
        # the lease came back: nothing still holds a worker
        assert service.ledger.in_use() == 0

    def test_wall_budget_enforced_daemon_side(self, tmp_path):
        """max_wall_seconds from the spec is policed by the daemon: the
        run is drained and quarantined as budget_exceeded."""
        spec = blob_spec(max_steps=200)
        spec["max_wall_seconds"] = 0.3
        service, client = start_service(tmp_path, total_workers=2)
        try:
            rid = client.submit(spec)
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                entry = client.status(rid)
                if entry["state"] in TERMINAL_STATES:
                    break
                time.sleep(0.05)
        finally:
            service.shutdown()
        assert entry["state"] == FAILED
        assert entry["note"] == "budget_exceeded"
        events = [e for e in read_events(service.registry.journal_path)
                  if e.get("run") == rid]
        assert any(e["event"] == "budget_exceeded" for e in events)

    def test_ps_reports_heartbeat_and_queue_position(self, tmp_path):
        service, client = start_service(tmp_path, total_workers=1)
        try:
            running = client.submit(blob_spec(max_steps=8))
            queued = client.submit(blob_spec(max_steps=8))
            wait_for_state(client, running, RUNNING)
            deadline = time.monotonic() + 60
            entry = None
            while time.monotonic() < deadline:
                entry = client.status(running)
                if entry["state"] != RUNNING:
                    break  # already finished: heartbeat column is moot
                if "heartbeat_age_seconds" in entry:
                    break
                time.sleep(0.05)
            if entry["state"] == RUNNING:
                assert entry["heartbeat_age_seconds"] >= 0.0
            queued_entry = client.status(queued)
            if queued_entry["state"] == QUEUED:
                assert queued_entry["queue_position"] == 1
            client.cancel(queued)
            client.wait(running, timeout=120)
        finally:
            service.shutdown()

    def test_wait_timeout_names_states_and_heartbeats(self, tmp_path):
        from repro.service import ServiceError

        service, client = start_service(tmp_path, total_workers=1)
        try:
            rid = client.submit(blob_spec(max_steps=12))
            wait_for_state(client, rid, RUNNING)
            with pytest.raises(ServiceError) as err:
                client.wait(rid, timeout=0.2)
            message = str(err.value)
            assert rid in message
            assert RUNNING in message
            assert "heartbeat" in message
            client.wait(rid, timeout=120)
        finally:
            service.shutdown()

    def test_shutdown_drain_timeout_is_journalled(self, tmp_path):
        """Satellite fix: a handle still alive at the shutdown drain
        deadline gets a distinct drain_timeout event, a hard kill, an
        explicit lease release, and an unambiguous requeue state."""
        spec = blob_spec(max_steps=8)
        spec["faults"] = "hang:level=0,step=0,seconds=120"
        service, client = start_service(
            tmp_path, total_workers=2, launcher="subprocess",
            tick_interval=0.05)  # default (generous) supervision
        try:
            rid = client.submit(spec, tenant="chaos")
            wait_for_state(client, rid, RUNNING)
            wait_for_checkpoint(service, rid)  # past the step-0 pair:
            # the worker is now wedged inside root step 0's level sweep
        finally:
            service.shutdown(drain=True, timeout=1.0)
        events = read_events(service.registry.journal_path)
        assert any(e["event"] == "drain_timeout" and e.get("run") == rid
                   for e in events)
        assert service.ledger.in_use() == 0
        record = RunRegistry(service.root).load(rid)
        assert record.state in (QUEUED, PREEMPTED)
        assert not service._handles


# ---------------------------------------------------------------- recovery
class TestDaemonCrashRestart:
    def test_second_daemon_resumes_orphaned_run(self, tmp_path):
        """Kill a daemon mid-run (no drain); a fresh daemon over the same
        root must recover the orphan through the registry and finish it,
        producing the same fingerprint as an uninterrupted run."""
        root = tmp_path / "svc"
        spec = blob_spec(max_steps=8)
        reference = RunJob(spec, str(tmp_path / "ref")).execute()
        assert reference["outcome"] == "done"

        service, client = start_service(tmp_path, total_workers=1)
        try:
            orphan = client.submit(spec, tenant="orphan")
            wait_for_state(client, orphan, RUNNING)
            wait_for_checkpoint(service, orphan)
        finally:
            # hard stop: no drain and no reaping, simulating a daemon
            # crash — the registry is left claiming RUNNING
            service._stop.set()
            if service._tick_thread is not None:
                service._tick_thread.join(timeout=5.0)
            if service._sock is not None:
                service._sock.close()
                service._sock = None
            try:
                os.unlink(os.path.join(service.root, "service.sock"))
            except FileNotFoundError:
                pass
        # wait out the in-process episode so the restart sees a settled
        # checkpoint directory (a real crash would have killed it dead)
        for handle in service._handles.values():
            handle.job.request_drain("crash")
            while handle.poll() is None:
                time.sleep(0.02)
        assert RunRegistry(str(root)).load(orphan).state == RUNNING

        service2 = RunService(str(root), total_workers=1,
                              launcher="inprocess", tick_interval=0.02)
        service2.start()
        client2 = ServiceClient(str(root))
        try:
            entry = client2.wait(orphan, timeout=240)[orphan]
        finally:
            service2.shutdown()
        assert entry["state"] == DONE
        assert entry["preemptions"] >= 1  # the crash-recovery edge
        assert entry["result"]["fingerprint"] == reference["fingerprint"]

        # the crash-restart edge is journalled
        events = read_events(os.path.join(str(root), "journal.jsonl"))
        starts = [e for e in events if e["event"] == "service_start"]
        assert len(starts) == 2
        assert any(r["run"] == orphan for r in starts[1]["recovered"])
