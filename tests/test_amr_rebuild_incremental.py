"""Incremental hierarchy rebuild: bitwise identity, pooling, counters.

The correctness gate for :mod:`repro.amr.rebuild`'s incremental path is
that it produces a hierarchy **bitwise identical** to the from-scratch
path (``incremental=False``) — same boxes in the same order, same field
contents, same times — while reusing the unchanged parents' subgrids and
recycling retired buffers through the hierarchy's
:class:`~repro.amr.pool.FieldArrayPool`.  These tests drive mirrored
hierarchies through identical flag evolutions (no-change, all-change,
level-disappears, randomised) and compare ``Hierarchy.fingerprint()``,
then pin the pool's no-aliasing contract, the parent-slab bounds fix in
``_fill_new_grid``, the created/destroyed/reused counter split, and the
single-epoch-bump ``bulk_update`` behaviour.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr import FieldArrayPool, Grid, Hierarchy, RefinementCriteria
from repro.amr.boundary import set_boundary_values
from repro.amr.rebuild import _fill_new_grid, _parent_slab, rebuild_hierarchy


def _blob_density(n_root, amplitude=10.0):
    centres = [(np.arange(n_root) + 0.5) / n_root] * 3
    x, y, z = np.meshgrid(*centres, indexing="ij")
    r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2
    return 1.0 + amplitude * np.exp(-r2 / 0.01)


def _fresh_hierarchy(n_root=8, amplitude=10.0):
    h = Hierarchy(n_root=n_root)
    root = h.root
    root.fields["density"][root.interior] = _blob_density(n_root, amplitude)
    set_boundary_values(h, 0)
    return h


def _mirror_pair(n_root=8, amplitude=10.0):
    """Two hierarchies with identical initial data (independent pools)."""
    return (_fresh_hierarchy(n_root, amplitude),
            _fresh_hierarchy(n_root, amplitude))


def _set_root_density(h, interior_values):
    root = h.root
    root.fields["density"][root.interior] = interior_values
    set_boundary_values(h, 0)


CRIT1 = dict(overdensity_threshold=3.0, max_level=1)


# ------------------------------------------------------- bitwise identity
class TestBitwiseIdentity:
    def test_no_change_full_reuse_identical(self):
        ha, hb = _mirror_pair()
        crit = RefinementCriteria(**CRIT1)
        for h in (ha, hb):
            rebuild_hierarchy(h, 1, crit)
        # second rebuild with unchanged flags: a reuses, b rebuilds raw
        rebuild_hierarchy(ha, 1, crit, incremental=True)
        rebuild_hierarchy(hb, 1, crit, incremental=False)
        assert ha.last_rebuild_stats["reused"] > 0
        assert ha.last_rebuild_stats["created"] == 0
        assert ha.last_rebuild_stats["reuse_rate"] == 1.0
        assert hb.last_rebuild_stats["reused"] == 0
        assert ha.fingerprint() == hb.fingerprint()

    def test_all_change_no_reuse_identical(self):
        ha, hb = _mirror_pair()
        crit = RefinementCriteria(**CRIT1)
        for h in (ha, hb):
            rebuild_hierarchy(h, 1, crit)
        # move the blob: every parent's flag set changes
        n = ha.root.dims[0]
        centres = [(np.arange(n) + 0.5) / n] * 3
        x, y, z = np.meshgrid(*centres, indexing="ij")
        r2 = (x - 0.25) ** 2 + (y - 0.25) ** 2 + (z - 0.25) ** 2
        moved = 1.0 + 10.0 * np.exp(-r2 / 0.01)
        for h in (ha, hb):
            _set_root_density(h, moved)
        rebuild_hierarchy(ha, 1, crit, incremental=True)
        rebuild_hierarchy(hb, 1, crit, incremental=False)
        assert ha.last_rebuild_stats["reused"] == 0
        assert ha.last_rebuild_stats["created"] > 0
        assert ha.fingerprint() == hb.fingerprint()

    def test_level_disappears_identical(self):
        ha, hb = _mirror_pair()
        crit = RefinementCriteria(**CRIT1)
        for h in (ha, hb):
            rebuild_hierarchy(h, 1, crit)
            assert h.max_level == 1
            _set_root_density(h, np.ones(tuple(int(d) for d in h.root.dims)))
        rebuild_hierarchy(ha, 1, crit, incremental=True)
        rebuild_hierarchy(hb, 1, crit, incremental=False)
        assert ha.max_level == 0
        assert hb.max_level == 0
        assert ha.fingerprint() == hb.fingerprint()
        # and coming back after the wipe still matches
        blob = _blob_density(int(ha.root.dims[0]))
        for h in (ha, hb):
            _set_root_density(h, blob)
        rebuild_hierarchy(ha, 1, crit, incremental=True)
        rebuild_hierarchy(hb, 1, crit, incremental=False)
        assert ha.fingerprint() == hb.fingerprint()

    def test_deep_hierarchy_identical(self):
        """Two refined levels: level-1 parents reuse their level-2 children."""
        ha, hb = _mirror_pair(n_root=8, amplitude=30.0)
        crit = RefinementCriteria(overdensity_threshold=3.0, max_level=2)
        for h in (ha, hb):
            rebuild_hierarchy(h, 1, crit)
            assert h.max_level == 2
        rebuild_hierarchy(ha, 1, crit, incremental=True)
        rebuild_hierarchy(hb, 1, crit, incremental=False)
        assert ha.last_rebuild_stats["reused"] > 0
        assert ha.fingerprint() == hb.fingerprint()

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=12, deadline=None)
    def test_random_flag_evolution_identical(self, seed):
        """Randomised density evolutions: incremental == from-scratch,
        epoch after epoch (mixtures of unchanged / grown / shrunk /
        vanished flag regions)."""
        rng = np.random.default_rng(seed)
        ha, hb = _mirror_pair()
        crit = RefinementCriteria(**CRIT1)
        n = int(ha.root.dims[0])
        base = _blob_density(n)
        for _ in range(4):
            op = rng.integers(0, 4)
            if op == 0:
                pass  # unchanged flags -> full reuse
            elif op == 1:
                # add a random overdense spot (local flag change)
                i, j, k = rng.integers(0, n, size=3)
                base = base.copy()
                base[i, j, k] += 10.0
            elif op == 2:
                # rescale: grows/shrinks the flagged region globally
                base = 1.0 + (base - 1.0) * float(rng.uniform(0.2, 2.0))
            else:
                # wipe: the refined level disappears
                base = np.ones_like(base)
            for h in (ha, hb):
                _set_root_density(h, base)
            rebuild_hierarchy(ha, 1, crit, incremental=True)
            rebuild_hierarchy(hb, 1, crit, incremental=False)
            assert ha.fingerprint() == hb.fingerprint()
            assert ha.grids_per_level() == hb.grids_per_level()


# ------------------------------------------------------------ array pool
class TestFieldArrayPool:
    def test_acquire_release_roundtrip(self):
        pool = FieldArrayPool()
        a = pool.acquire((4, 4, 4))
        assert a.shape == (4, 4, 4) and a.dtype == np.float64
        pool.release(a)
        b = pool.acquire((4, 4, 4))
        assert b is a  # the freed buffer is recycled, not reallocated
        assert pool.stats()["hits"] == 1

    def test_views_and_foreign_dtypes_refused(self):
        pool = FieldArrayPool()
        owner = np.zeros((4, 4, 4))
        pool.release(owner[1:3])            # view
        pool.release(np.zeros(8, np.int32))  # wrong dtype
        pool.release(np.zeros((2, 2, 2)).T[::-1])  # non-contiguous view
        assert pool.free_arrays == 0
        assert pool.dropped == 3

    def test_cap_bounds_pool_memory(self):
        pool = FieldArrayPool(max_free_per_shape=2)
        for _ in range(4):
            pool.release(np.zeros((2, 2, 2)))
        assert pool.free_arrays == 2
        assert pool.dropped == 2

    def test_rebuild_recycles_buffers(self):
        """A re-clustering rebuild feeds destroyed grids' buffers to the
        new grids instead of the allocator."""
        h = _fresh_hierarchy()
        crit = RefinementCriteria(**CRIT1)
        rebuild_hierarchy(h, 1, crit)
        old_arrays = {id(arr) for g in h.level_grids(1)
                      for _, arr in g.fields.array_items()}
        # force re-clustering with the same shapes by disabling reuse; a
        # level's new grids are allocated before its old ones are retired,
        # so the first rebuild stocks the pool and the second draws on it
        rebuild_hierarchy(h, 1, crit, incremental=False)
        rebuild_hierarchy(h, 1, crit, incremental=False)
        assert h.pool.hits > 0
        new_arrays = {id(arr) for g in h.level_grids(1)
                      for _, arr in g.fields.array_items()}
        assert old_arrays & new_arrays  # buffers physically recycled

    def test_release_severs_refs_no_aliasing(self):
        """A retired grid keeps no reference to a buffer a live grid may
        have since acquired from the pool."""
        h = _fresh_hierarchy()
        crit = RefinementCriteria(**CRIT1)
        rebuild_hierarchy(h, 1, crit)
        retired = list(h.level_grids(1))
        rebuild_hierarchy(h, 1, crit, incremental=False)
        for g in retired:
            assert g.fields is None
            assert g.phi is None
            assert g.old_fields is None
        # no two live grids share storage
        seen = {}
        for g in h.all_grids():
            for name, arr in list(g.fields.array_items()) + [("phi", g.phi)]:
                assert id(arr) not in seen, (
                    f"{name} of {g} aliases {seen[id(arr)]}")
                seen[id(arr)] = (name, g)

    def test_pooled_allocation_bitwise_identical(self):
        """Dirty pooled buffers are fully overwritten: a pool-backed
        hierarchy matches one whose pool never has a hit."""
        ha, hb = _mirror_pair()
        hb.pool = FieldArrayPool(max_free_per_shape=0)  # always reallocate
        crit = RefinementCriteria(**CRIT1)
        for _ in range(3):
            rebuild_hierarchy(ha, 1, crit, incremental=False)
            rebuild_hierarchy(hb, 1, crit, incremental=False)
        assert ha.pool.hits > 0
        assert hb.pool.hits == 0
        assert ha.fingerprint() == hb.fingerprint()


# ------------------------------------------- parent-slab bounds (bugfix)
class TestFillBounds:
    def test_child_flush_at_parent_edge_small_nghost(self):
        """A child flush against its parent's edge with nghost=1 used to
        produce a negative parent-slice start that silently wrapped,
        filling the child's low ghosts from the far side of the parent.
        The slab is now clamped to the parent's allocated extent."""
        n = 8
        h = Hierarchy(n_root=n, nghost=1)
        root = h.root
        # x-ramp: wraparound would pull high-x values into low-x ghosts
        shape = root.shape_with_ghosts
        xs = np.arange(shape[0], dtype=float) - root.nghost
        root.fields["density"][:] = 10.0 + xs[:, None, None]  # incl. ghosts

        child = Grid(1, (0, 0, 0), (4, 4, 4), n_root=n, nghost=1)
        h.add_grid(child, root)
        _fill_new_grid(child, root, [])
        rho = child.fields["density"]
        # the low-x ghost plane sits at fine x=-1 -> coarse x~-0.5, where
        # the ramp is ~9.5; a wrapping slice would have read the high-x
        # end of the parent array (~19) instead
        assert np.all(rho[0] > 8.0)
        assert np.all(rho[0] < 11.0)

    def test_parent_slab_clamps_to_allocation(self):
        n = 8
        h = Hierarchy(n_root=n, nghost=1)
        child = Grid(1, (0, 0, 0), (4, 4, 4), n_root=n, nghost=1)
        p_sl, offset = _parent_slab(
            h.root, child.start_index - 1, child.end_index + 1, 2)
        for sl in p_sl:
            assert sl.start >= 0  # never a wrapping negative index
        assert np.all(offset >= 0)

    def test_non_nested_region_raises(self):
        """A fine region outside the parent's allocated extent is a broken
        nesting invariant and must fail loudly, not wrap."""
        n = 8
        h = Hierarchy(n_root=n, nghost=1)
        with pytest.raises(ValueError, match="not nested"):
            _parent_slab(h.root, np.array([-8, 0, 0]), np.array([4, 4, 4]), 2)


# ------------------------------------------------------------- counters
class TestCounters:
    def test_created_destroyed_reused_split(self):
        h = _fresh_hierarchy()
        crit = RefinementCriteria(**CRIT1)
        c0, d0, r0 = h.grids_created, h.grids_destroyed, h.grids_reused
        rebuild_hierarchy(h, 1, crit)
        n1 = len(h.level_grids(1))
        assert h.grids_created == c0 + n1
        assert h.grids_destroyed == d0
        assert h.grids_reused == r0
        # full-reuse rebuild: only the reused counter moves
        rebuild_hierarchy(h, 1, crit)
        assert h.grids_created == c0 + n1
        assert h.grids_destroyed == d0
        assert h.grids_reused == r0 + n1
        stats = h.last_rebuild_stats
        assert stats["created"] == 0
        assert stats["destroyed"] == 0
        assert stats["reused"] == n1
        assert stats["parents_reused"] >= 1
        # from-scratch rebuild: created and destroyed move together
        rebuild_hierarchy(h, 1, crit, incremental=False)
        assert h.grids_created == c0 + 2 * n1
        assert h.grids_destroyed == d0 + n1
        assert h.grids_reused == r0 + n1

    def test_hierarchy_stats_reuse_series(self):
        from repro.perf import HierarchyStats

        h = _fresh_hierarchy()
        crit = RefinementCriteria(**CRIT1)
        rebuild_hierarchy(h, 1, crit)
        rebuild_hierarchy(h, 1, crit)
        stats = HierarchyStats()
        stats.record_step(h, 0, 0.1, 0.1)
        s = stats.series()
        assert s["reuse_events"][-1] == h.grids_reused
        assert s["alloc_events"][-1] == h.grids_created + h.grids_destroyed
        assert "grid reuse events" in stats.report()


# ----------------------------------------------------------- bulk update
class TestBulkUpdate:
    def test_rebuild_bumps_epoch_once(self):
        h = _fresh_hierarchy()
        crit = RefinementCriteria(**CRIT1)
        e0 = h.topology_epoch
        rebuild_hierarchy(h, 1, crit)
        assert len(h.level_grids(1)) > 1  # many mutations...
        assert h.topology_epoch == e0 + 1  # ...one epoch transition

    def test_full_reuse_keeps_epoch_and_caches(self):
        h = _fresh_hierarchy()
        crit = RefinementCriteria(**CRIT1)
        rebuild_hierarchy(h, 1, crit)
        smap = h.sibling_map(1)
        e0 = h.topology_epoch
        rebuild_hierarchy(h, 1, crit)  # nothing changes
        assert h.last_rebuild_stats["reuse_rate"] == 1.0
        assert h.topology_epoch == e0
        assert h.sibling_map(1) is smap  # cache stayed warm

    def test_mid_bulk_queries_bypass_cache(self):
        h = _fresh_hierarchy()
        crit = RefinementCriteria(**CRIT1)
        rebuild_hierarchy(h, 1, crit)
        h.sibling_map(1)
        with h.bulk_update():
            h.remove_level_grids(1, tally=False)
            # tree mutated, epoch not yet bumped: the stale map must not
            # be served
            assert h.sibling_map(1) == {}

    def test_nested_bulk_single_bump(self):
        h = _fresh_hierarchy()
        e0 = h.topology_epoch
        with h.bulk_update():
            with h.bulk_update():
                g = Grid(1, (0, 0, 0), (4, 4, 4), n_root=8)
                h.add_grid(g, h.root)
            h.remove_level_grids(1)
        assert h.topology_epoch == e0  # membership ended where it began


# ------------------------------------------------- evolver + backends
def _build_sim(backend=None, workers=None, incremental=True):
    from repro import Simulation, SimulationConfig

    sim = Simulation(SimulationConfig(
        n_root=8, self_gravity=True, max_level=1, refine_overdensity=3.0,
        g_code=2.0, cfl=0.3, exec_backend=backend, workers=workers,
    ))
    sim.set_density(lambda x, y, z: 1 + 10 * np.exp(
        -((x - .5) ** 2 + (y - .5) ** 2 + (z - .5) ** 2) / 0.01))
    sim.set_field("internal", lambda x, y, z: np.full_like(x, 0.05))
    sim.initialize()
    sim.evolver.incremental_rebuild = incremental
    return sim


class TestEvolverIntegration:
    def test_incremental_run_bitwise_identical_across_backends(self):
        """Full evolver steps (hydro + gravity + rebuild): the incremental
        path matches the from-scratch path on every exec backend."""
        t_end = 0.8
        reference = _build_sim(incremental=False)
        for _ in range(3):
            reference.evolver.advance_root_step(t_end)
        want = reference.hierarchy.fingerprint()
        for backend, workers in [(None, None), ("serial", 1),
                                 ("thread", 2), ("process", 2)]:
            sim = _build_sim(backend=backend, workers=workers,
                             incremental=True)
            for _ in range(3):
                sim.evolver.advance_root_step(t_end)
            assert sim.hierarchy.fingerprint() == want, (backend, workers)

    def test_rebuild_step_stats_and_telemetry(self):
        from repro.runtime.telemetry import step_record

        sim = _build_sim()
        t_end = 0.8
        sim.evolver.advance_root_step(t_end)
        snap = sim.evolver.rebuild_step_stats()
        assert snap is not None
        assert set(snap) == {"created", "destroyed", "reused", "reuse_rate",
                             "flags"}
        record = step_record(sim.evolver, 1, 0.01)
        assert record["rebuild"] == snap
        # steady state: later steps should mostly reuse
        for _ in range(2):
            sim.evolver.advance_root_step(t_end)
        snap = sim.evolver.rebuild_step_stats()
        assert snap["reused"] > 0
