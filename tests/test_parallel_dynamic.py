"""Tests for the dynamic load balancer (paper ref. [22])."""

import numpy as np
import pytest

from repro.parallel.dynamic import DynamicLoadBalancer
from repro.parallel.sterile import SterileGrid


def _grids(n, seed=0, id_offset=0, level_max=3):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        level = int(rng.integers(0, level_max + 1))
        dims = tuple(int(d) for d in rng.integers(4, 16, 3))
        out.append(SterileGrid(id_offset + i, level, (0, 0, 0), dims, 0))
    return out


class TestDynamicBalancer:
    def test_initial_placement_balanced(self):
        grids = _grids(40)
        bal = DynamicLoadBalancer(8, threshold=1.3)
        bal.update(grids)
        assert bal.imbalance(grids) < 1.5
        # initial placement migrates nothing (grids are created in place)
        assert bal.total_migrated_bytes == 0

    def test_sticky_placement_when_balanced(self):
        grids = _grids(40, seed=1)
        bal = DynamicLoadBalancer(8)
        a1 = bal.update(grids)
        a2 = bal.update(grids)  # identical population: nothing moves
        assert a1 == a2
        assert bal.migration_events == 0

    def test_migration_on_hotspot(self):
        """A rebuild that concentrates work must trigger migrations."""
        grids = _grids(32, seed=2, level_max=0)
        bal = DynamicLoadBalancer(4, threshold=1.2)
        bal.update(grids)
        # deep new grids appear (collapse!): newcomers go to light ranks,
        # then heavy old ranks shed work
        deep = [
            SterileGrid(1000 + i, 4, (0, 0, 0), (12, 12, 12), 0)
            for i in range(6)
        ]
        bal.update(grids + deep)
        imb = bal.imbalance(grids + deep)
        assert imb < 2.0

    def test_departed_grids_dropped(self):
        grids = _grids(20, seed=3)
        bal = DynamicLoadBalancer(4)
        bal.update(grids)
        survivors = grids[:5]
        a = bal.update(survivors)
        assert set(a.keys()) == {g.grid_id for g in survivors}

    def test_migration_cost_accounted(self):
        grids = _grids(16, seed=4, level_max=0)
        bal = DynamicLoadBalancer(4, threshold=1.05)
        bal.update(grids)
        # force a gross imbalance by assigning everything to rank 0
        for g in grids:
            bal.assignment[g.grid_id] = 0
        bal.update(grids)
        rep = bal.report()
        assert rep["migration_events"] > 0
        assert rep["migrated_bytes"] > 0
        assert bal.imbalance(grids) < 2.0

    def test_tracks_collapse_history(self):
        """Simulated collapse: level population deepens over rebuilds; the
        balancer keeps imbalance bounded the whole way."""
        rng = np.random.default_rng(5)
        bal = DynamicLoadBalancer(8, threshold=1.3)
        base = _grids(30, seed=6, level_max=1)
        population = list(base)
        next_id = 10000
        for epoch in range(8):
            # collapse adds deep grids, removes some shallow ones
            new = [
                SterileGrid(next_id + i, min(2 + epoch // 2, 5), (0, 0, 0),
                            (8, 8, 8), 0)
                for i in range(4)
            ]
            next_id += len(new)
            population = population[2:] + new
            bal.update(population)
        rep = bal.report()
        assert rep["mean_imbalance"] < 2.0
        assert len(bal.history) == 8

    def test_single_rank_degenerate(self):
        grids = _grids(10, seed=7)
        bal = DynamicLoadBalancer(1)
        a = bal.update(grids)
        assert all(r == 0 for r in a.values())
        assert bal.imbalance(grids) == pytest.approx(1.0)
