"""Tests for PLM/PPM reconstruction and the Riemann solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hydro.reconstruction import plm_reconstruct, ppm_reconstruct, reconstruct
from repro.hydro.riemann import (
    exact_riemann,
    hll_flux,
    hllc_flux,
    _conserved_flux,
)

GAMMA = 1.4  # classic shock-tube gamma for the reference solutions


class TestReconstruction:
    @pytest.mark.parametrize("method", ["plm", "ppm"])
    def test_constant_preserved(self, method):
        q = np.full(16, 3.7)
        ql, qr = reconstruct(q, method)
        np.testing.assert_allclose(ql, 3.7)
        np.testing.assert_allclose(qr, 3.7)

    @pytest.mark.parametrize("method", ["plm", "ppm"])
    def test_linear_exact_in_interior(self, method):
        q = np.linspace(0.0, 1.0, 20)
        ql, qr = reconstruct(q, method)
        dx = q[1] - q[0]
        expected = q[:-1] + 0.5 * dx  # interface values of a linear profile
        # interior faces reproduce the linear profile exactly
        np.testing.assert_allclose(ql[3:-3], expected[3:-3], atol=1e-14)
        np.testing.assert_allclose(qr[3:-3], expected[3:-3], atol=1e-14)

    @pytest.mark.parametrize("method", ["plm", "ppm"])
    def test_no_new_extrema(self, method):
        rng = np.random.default_rng(0)
        q = rng.random(32)
        ql, qr = reconstruct(q, method)
        lo = np.minimum(q[:-1], q[1:]) - 1e-13
        hi = np.maximum(q[:-1], q[1:]) + 1e-13
        assert np.all(ql >= lo) and np.all(ql <= hi)
        assert np.all(qr >= lo) and np.all(qr <= hi)

    def test_ppm_sharper_than_plm_on_smooth(self):
        x = np.linspace(0, 2 * np.pi, 64, endpoint=False)
        q = np.sin(x)
        exact = np.sin(x[:-1] + 0.5 * (x[1] - x[0]))
        ql_p, _ = ppm_reconstruct(q)
        ql_l, _ = plm_reconstruct(q)
        # mean error: at the sine extrema both schemes clip to first order
        # (the limiter), so the max norm ties; away from extrema PPM wins.
        err_ppm = np.abs(ql_p[5:-5] - exact[5:-5]).mean()
        err_plm = np.abs(ql_l[5:-5] - exact[5:-5]).mean()
        assert err_ppm < 0.6 * err_plm

    def test_multidimensional_broadcast(self):
        q = np.random.default_rng(1).random((10, 4, 5))
        ql, qr = ppm_reconstruct(q)
        assert ql.shape == (9, 4, 5)
        assert qr.shape == (9, 4, 5)

    def test_small_arrays_fall_back(self):
        q = np.array([1.0, 2.0, 3.0])
        ql, qr = ppm_reconstruct(q)  # falls back to plm/donor
        assert ql.shape == (2,)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            reconstruct(np.ones(8), "weno")

    @given(st.integers(min_value=6, max_value=40), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_ppm_bounded_property(self, n, seed):
        q = np.random.default_rng(seed).random(n) * 10 - 5
        ql, qr = ppm_reconstruct(q)
        lo = np.minimum(q[:-1], q[1:]) - 1e-12
        hi = np.maximum(q[:-1], q[1:]) + 1e-12
        assert np.all((ql >= lo) & (ql <= hi))
        assert np.all((qr >= lo) & (qr <= hi))


def _state(rho, u, p, v=0.0, w=0.0):
    return tuple(np.atleast_1d(np.float64(x)) for x in (rho, u, v, w, p))


class TestApproximateRiemann:
    @pytest.mark.parametrize("solver", [hll_flux, hllc_flux])
    def test_identical_states_give_physical_flux(self, solver):
        s = _state(1.0, 0.5, 2.0, v=0.1, w=-0.2)
        f = solver(s, s, GAMMA)
        expected = _conserved_flux(*s, GAMMA)
        for a, b in zip(f, expected):
            np.testing.assert_allclose(a, b, rtol=1e-12)

    @pytest.mark.parametrize("solver", [hll_flux, hllc_flux])
    def test_mirror_symmetry(self, solver):
        left = _state(1.0, 0.3, 1.0)
        right = _state(0.5, -0.2, 0.4)
        f1 = solver(left, right, GAMMA)
        # mirrored problem: swap sides, flip normal velocities
        left_m = _state(0.5, 0.2, 0.4)
        right_m = _state(1.0, -0.3, 1.0)
        f2 = solver(left_m, right_m, GAMMA)
        np.testing.assert_allclose(f1[0], -f2[0], atol=1e-12)  # mass flux flips
        np.testing.assert_allclose(f1[1], f2[1], atol=1e-12)  # momentum flux even
        np.testing.assert_allclose(f1[4], -f2[4], atol=1e-12)  # energy flux flips

    def test_hllc_resolves_stationary_contact(self):
        # stationary contact: only density jumps; HLLC mass/energy flux must
        # vanish and the momentum flux reduce to the static pressure
        left = _state(1.0, 0.0, 1.0)
        right = _state(0.125, 0.0, 1.0)
        f = hllc_flux(left, right, GAMMA)
        np.testing.assert_allclose(f[0], 0.0, atol=1e-12)
        np.testing.assert_allclose(f[1], 1.0, atol=1e-12)
        np.testing.assert_allclose(f[4], 0.0, atol=1e-12)

    def test_hll_smears_stationary_contact(self):
        left = _state(1.0, 0.0, 1.0)
        right = _state(0.125, 0.0, 1.0)
        f = hll_flux(left, right, GAMMA)
        assert abs(f[0].item()) > 1e-3  # HLL leaks mass across the contact

    def test_supersonic_upwinding(self):
        # flow faster than any wave: flux must equal the upwind physical flux
        left = _state(1.0, 10.0, 1.0)
        right = _state(0.5, 10.0, 0.3)
        f = hllc_flux(left, right, GAMMA)
        expected = _conserved_flux(*left, GAMMA)
        for a, b in zip(f, expected):
            np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_vectorised(self):
        n = 64
        rng = np.random.default_rng(2)
        left = (rng.random(n) + 0.5, rng.standard_normal(n), np.zeros(n), np.zeros(n), rng.random(n) + 0.5)
        right = (rng.random(n) + 0.5, rng.standard_normal(n), np.zeros(n), np.zeros(n), rng.random(n) + 0.5)
        f = hllc_flux(left, right, GAMMA)
        assert all(comp.shape == (n,) for comp in f)
        assert all(np.all(np.isfinite(comp)) for comp in f)


class TestExactRiemann:
    def test_sod_star_state(self):
        """Toro's Test 1 (Sod): p* = 0.30313, u* = 0.92745."""
        rho, u, p = exact_riemann((1.0, 0.0, 1.0), (0.125, 0.0, 0.1), GAMMA, np.array([0.0]))
        # at xi=0 we are in the left star region (u* > 0)
        assert abs(u[0] - 0.92745) < 1e-4
        assert abs(p[0] - 0.30313) < 1e-4

    def test_sod_densities(self):
        # contact sits at xi = u* = 0.9274, shock at xi = 1.7522
        xi = np.array([-2.0, 0.5, 1.2, 2.0])
        rho, u, p = exact_riemann((1.0, 0.0, 1.0), (0.125, 0.0, 0.1), GAMMA, xi)
        assert abs(rho[0] - 1.0) < 1e-12  # undisturbed left
        assert abs(rho[3] - 0.125) < 1e-12  # undisturbed right
        assert abs(rho[1] - 0.42632) < 1e-3  # left star region
        assert abs(rho[2] - 0.26557) < 1e-3  # shocked right state

    def test_123_problem(self):
        """Toro's Test 2: strong double rarefaction, near-vacuum centre."""
        rho, u, p = exact_riemann((1.0, -2.0, 0.4), (1.0, 2.0, 0.4), GAMMA, np.array([0.0]))
        assert u[0] == pytest.approx(0.0, abs=1e-10)
        assert p[0] < 0.01

    def test_symmetric_shock_collision(self):
        rho, u, p = exact_riemann((1.0, 2.0, 0.4), (1.0, -2.0, 0.4), GAMMA, np.array([0.0]))
        assert abs(u[0]) < 1e-10
        assert p[0] > 0.4  # compression raises pressure

    def test_vacuum_raises(self):
        with pytest.raises(ValueError):
            exact_riemann((1.0, -20.0, 0.4), (1.0, 20.0, 0.4), GAMMA, np.array([0.0]))
