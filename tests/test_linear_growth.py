"""Integration test: linear growth of density perturbations.

In an EdS universe a small-amplitude mode grows as the linear growth
factor D(a) = a.  Evolving the coupled gravity+hydro system (and a pure
particle version) across an expansion factor of ~1.6 and comparing the
measured amplitude growth against D(a) validates, in one shot: the
comoving source terms, the Poisson coupling, the expansion clock, and the
unit system.  This is the standard cosmological code test.
"""

import numpy as np
import pytest

from repro.amr import Hierarchy, HierarchyEvolver
from repro.amr.boundary import set_boundary_values
from repro.amr.evolve import CosmologyClock
from repro.amr.gravity import HierarchyGravity
from repro.cosmology import CodeUnits, FriedmannSolver, STANDARD_CDM
from repro.hydro import PPMSolver


@pytest.fixture(scope="module")
def growth_run():
    """Evolve a single long-wavelength gas mode from z=50 to z=30."""
    z_i, z_f = 50.0, 30.0
    units = CodeUnits.for_cosmology(STANDARD_CDM, 2000.0, z_i)
    fr = FriedmannSolver(STANDARD_CDM)
    clock = CosmologyClock(fr, units)
    n = 16
    h = Hierarchy(n_root=n)
    root = h.root
    x = (np.arange(n) + 0.5) / n
    amp0 = 0.02
    delta = amp0 * np.cos(2 * np.pi * x)[:, None, None] * np.ones((1, n, n))
    root.fields["density"][root.interior] = 1.0 + delta
    # Zel'dovich velocity for the growing mode: v_pec = a H f D psi with
    # psi_x = -amp0 sin(2 pi x)/(2 pi) (so that dx displacement reproduces
    # delta = amp0 cos); f=1 in EdS
    a_i = units.a_initial
    h_a = float(fr.hubble(a_i))
    psi = -amp0 * np.sin(2 * np.pi * x) / (2 * np.pi)
    v_pec = a_i * h_a * psi * units.length_unit / units.velocity_unit
    root.fields["vx"][root.interior] = v_pec[:, None, None]
    # cold gas so pressure does not fight gravity on this scale
    e = units.energy_from_temperature(1.0, 1.22, a_i)
    root.fields["internal"][:] = e
    root.fields["energy"][:] = root.fields["internal"] + 0.5 * root.fields["vx"] ** 2
    set_boundary_values(h, 0)

    grav = HierarchyGravity(g_code=units.gravity_constant_code, mean_density=1.0)
    ev = HierarchyEvolver(h, PPMSolver(), gravity=grav, clock=clock,
                          units=units, cfl=0.4)
    a_f = 1.0 / (1.0 + z_f)
    t_end = (float(fr.time_of_a(a_f)) - clock.t0_cgs) / units.time_unit
    ev.advance_to(t_end)
    return h, amp0, a_i, a_f


def _mode_amplitude(h):
    rho = h.root.field_view("density").mean(axis=(1, 2))
    n = len(rho)
    x = (np.arange(n) + 0.5) / n
    return 2.0 * np.mean((rho - rho.mean()) * np.cos(2 * np.pi * x))


class TestLinearGrowth:
    def test_amplitude_grows_as_D(self, growth_run):
        h, amp0, a_i, a_f = growth_run
        amp1 = _mode_amplitude(h)
        expected = amp0 * (a_f / a_i)  # EdS: D = a
        assert amp1 == pytest.approx(expected, rel=0.15)

    def test_mode_shape_preserved(self, growth_run):
        """Linear evolution: the mode stays a cosine (no harmonics yet)."""
        h, amp0, a_i, a_f = growth_run
        rho = h.root.field_view("density").mean(axis=(1, 2))
        n = len(rho)
        x = (np.arange(n) + 0.5) / n
        second = 2.0 * np.mean((rho - rho.mean()) * np.cos(4 * np.pi * x))
        first = _mode_amplitude(h)
        assert abs(second) < 0.15 * abs(first)

    def test_velocity_continuity_consistent(self, growth_run):
        """Continuity: delta_dot = -ik v/a -> v amplitude = a H delta/k * a."""
        h, amp0, a_i, a_f = growth_run
        vx = h.root.field_view("vx").mean(axis=(1, 2))
        n = len(vx)
        x = (np.arange(n) + 0.5) / n
        v_amp = 2.0 * np.mean(vx * np.sin(2 * np.pi * x))
        assert v_amp < 0  # infall toward overdensity at x=0
