"""Deep-hierarchy stress tests: the paper's headline claims at the
data-structure level.

"Our parallel implementation places no limit on the depth or complexity of
the adaptive grid hierarchy" — and the hero run used 34 levels for a
spatial dynamic range of 1e12.  Full physics at that depth needs the
hero run's CPU-months, but the *hierarchy machinery* (geometry, nesting,
boundary interpolation, EPA positions and times) must work at any depth —
that is what these tests drive, to level 40 (SDR ~ 8.8e12, beyond the
paper's 1e12).
"""

import numpy as np
import pytest

from repro.amr import Grid, Hierarchy
from repro.amr.boundary import interpolate_from_parent, set_boundary_values
from repro.amr.evolve import HierarchyEvolver
from repro.hydro import PPMSolver
from repro.precision.doubledouble import DoubleDouble


def build_deep_tower(n_levels: int, n_root: int = 8, dims: int = 8):
    """A tower of nested grids, each centred in its parent."""
    h = Hierarchy(n_root=n_root)
    parent = h.root
    # centre of the box in level-l integer coordinates; keep each child
    # centred: child of size `dims` starts at parent_centre*2 - dims/2
    start = np.array([n_root // 2] * 3, dtype=np.int64)
    for level in range(1, n_levels + 1):
        start = start * 2 - dims // 2
        g = Grid(level, start, (dims,) * 3, n_root)
        h.add_grid(g, parent)
        parent = g
        start = start + dims // 2  # centre index at this level
    return h


class TestDeepTower:
    @pytest.fixture(scope="class")
    def tower(self):
        return build_deep_tower(40)

    def test_sdr_exceeds_paper(self, tower):
        """SDR = 8 * 2^40 ~ 8.8e12 > the paper's 1e12."""
        assert tower.max_level == 40
        assert tower.spatial_dynamic_range() > 1e12

    def test_nesting_valid_at_depth(self, tower):
        assert tower.validate_nesting()

    def test_geometry_exact_at_depth(self, tower):
        """Integer index geometry stays exact: edges are exact dyadics and
        parent/child edges coincide bit-for-bit."""
        g = tower.level_grids(40)[0]
        p = g.parent
        # child occupies the central half of its parent exactly
        lo, hi = g.parent_index_region()
        assert np.all(hi - lo == 4)
        # dyadic edge exactness: edge * 2^43 is an exact integer
        scale = float(2 ** 43)
        for e in g.left_edge:
            assert e * scale == round(e * scale)

    def test_cell_width_below_float64_epsilon_of_box(self, tower):
        g = tower.level_grids(40)[0]
        # dx ~ 1.1e-13: smaller than eps(1.0)*box ~ 2.2e-16? No — but the
        # *offset between adjacent deep grids* at non-dyadic positions is
        # what float64 loses; dx itself is representable:
        assert g.dx == 2.0 ** -43
        # the paper's criterion: dx/x ~ 1e-13 at x~1 needs >float64 headroom
        assert g.dx / 1.0 < 1e-12

    def test_time_accumulation_needs_epa(self, tower):
        """At level 40 the per-step dt/t ratio is ~1e-13: adding steps in
        float64 stagnates, the DoubleDouble time does not."""
        t_dd = DoubleDouble(1.0)
        t_f64 = 1.0
        dt = 2.0 ** -45 * 1.1  # a level-40-ish timestep, non-dyadic
        for _ in range(100):
            t_dd = DoubleDouble(t_dd + dt)
            t_f64 = t_f64 + dt
        exact = 1.0 + 100 * dt
        err_dd = abs(float(t_dd - DoubleDouble(exact)))
        # f64 accumulates representation error of order eps per step; dd
        # must be orders of magnitude better
        err_f64 = abs(t_f64 - exact)
        assert err_dd <= err_f64
        assert err_dd < 1e-25

    def test_boundary_interpolation_at_depth(self, tower):
        """Parent->child ghost filling must work at level 40."""
        g = tower.level_grids(40)[0]
        p = g.parent
        p.fields["density"][:] = 3.14
        g.fields["density"][g.interior] = 42.0
        interpolate_from_parent(g, p)
        assert np.all(g.fields["density"][g.interior] == 42.0)
        np.testing.assert_allclose(g.fields["density"][0, :, :], 3.14)

    def test_memory_stays_linear(self, tower):
        """41 levels of 8^3 grids: memory is linear in depth, not SDR^3
        (the whole point of AMR; a unigrid would need (8*2^40)^3 cells)."""
        total = tower.total_memory_bytes()
        assert total < 200e6  # a few MB per grid x 41

    def test_evolve_one_step_at_depth(self):
        """The W-cycle itself functions on a (shallower) tower: run a tiny
        dt through 12 levels and confirm every level synchronises."""
        h = build_deep_tower(12)
        for g in h.all_grids():
            g.fields["density"][:] = 1.0
            g.fields["internal"][:] = 1.0
            g.fields["energy"][:] = 1.0
        set_boundary_values(h, 0)
        ev = HierarchyEvolver(h, PPMSolver(), cfl=0.4)
        # one shallow root step; max_steps guard in EvolveLevel keeps the
        # recursion finite because dt_child ~ dt_root at uniform data
        ev.advance_to(1e-4)
        times = [float(g.time) for g in h.all_grids()]
        assert np.allclose(times, 1e-4)


class TestGridsAtArbitraryDepth:
    def test_grid_beyond_level_100(self):
        """Nothing structural caps the depth (paper: 'no limit')."""
        g = Grid(100, (0, 0, 0), (4, 4, 4), n_root=8)
        assert g.dx == 2.0 ** -103
        assert g.cells_per_dim_at_level == 8 * 2 ** 100

    def test_index_arithmetic_at_depth_64(self):
        """Integer indices use int64; depth ~50 at n_root 8 is the int64
        frontier — verify the overlap math is still exact there."""
        lvl = 50
        start = np.int64(2) ** 52  # within int64
        a = Grid(lvl, (start, 0, 0), (8, 8, 8), n_root=8)
        b = Grid(lvl, (start + 4, 0, 0), (8, 8, 8), n_root=8)
        lo, hi = a.overlap_with(b)
        assert hi[0] - lo[0] == 4
