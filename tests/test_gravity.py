"""Tests for the FFT and multigrid Poisson solvers."""

import numpy as np
import pytest

from repro.gravity import (
    MultigridSolver,
    acceleration_from_potential,
    gravity_source,
    laplacian,
    solve_periodic,
    solve_dirichlet,
)


class TestFFTPoisson:
    def test_discrete_laplacian_inverse(self):
        """laplacian(solve(S)) must reproduce S to machine precision."""
        rng = np.random.default_rng(0)
        n = 16
        s = rng.standard_normal((n, n, n))
        s -= s.mean()
        dx = 1.0 / n
        phi = solve_periodic(s, dx)
        np.testing.assert_allclose(laplacian(phi, dx), s, atol=1e-9 * np.abs(s).max())

    def test_single_mode(self):
        """A sinusoidal source has the analytic eigenvalue solution."""
        n = 32
        dx = 1.0 / n
        x = (np.arange(n) + 0.5) * dx
        kx = 2.0 * np.pi
        s = np.sin(kx * x)[:, None, None] * np.ones((1, n, n))
        phi = solve_periodic(s, dx)
        # discrete eigenvalue for this mode
        eig = -2.0 / dx**2 * (1.0 - np.cos(kx * dx))
        np.testing.assert_allclose(phi, s / eig, atol=1e-12)

    def test_zero_mean_output(self):
        rng = np.random.default_rng(1)
        s = rng.standard_normal((8, 8, 8))
        phi = solve_periodic(s, 0.125)
        assert abs(phi.mean()) < 1e-14

    def test_mean_projected_out(self):
        """A constant offset in the source must not change the answer."""
        rng = np.random.default_rng(2)
        s = rng.standard_normal((8, 8, 8))
        s -= s.mean()
        phi1 = solve_periodic(s, 0.125)
        phi2 = solve_periodic(s + 5.0, 0.125)
        np.testing.assert_allclose(phi1, phi2, atol=1e-12)

    def test_point_mass_potential_shape(self):
        """Potential of a point mass falls off and is deepest at the mass."""
        n = 32
        dx = 1.0 / n
        rho = np.zeros((n, n, n))
        rho[n // 2, n // 2, n // 2] = 1.0 / dx**3
        s = gravity_source(rho, g_code=1.0 / (4 * np.pi))
        phi = solve_periodic(s, dx)
        assert np.argmin(phi) == np.ravel_multi_index((n // 2,) * 3, (n,) * 3)
        # radial monotonicity along an axis (away from the periodic image)
        line = phi[n // 2, n // 2, n // 2 : n // 2 + 12]
        assert np.all(np.diff(line) > 0)

    def test_point_mass_inverse_r(self):
        """Far from the mass (but << box) the potential approaches -Gm/r."""
        n = 64
        dx = 1.0 / n
        rho = np.zeros((n, n, n))
        rho[0, 0, 0] = 1.0 / dx**3
        s = gravity_source(rho, g_code=1.0 / (4 * np.pi))  # G=1/(4pi): del^2 phi = rho - rhobar
        phi = solve_periodic(s, dx)
        # close to the mass (r << box) the periodic images contribute little:
        # phi approaches the free-space -1/(4 pi r)
        for r, tol in ((2, 0.05), (4, 0.2)):
            expected = -1.0 / (4 * np.pi * r * dx)
            assert abs(phi[r, 0, 0] - expected) < tol * abs(expected)

    def test_gravity_source_subtracts_mean(self):
        rho = np.full((4, 4, 4), 3.0)
        s = gravity_source(rho, g_code=2.0, a=0.5)
        np.testing.assert_allclose(s, 0.0, atol=1e-14)

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            solve_periodic(np.zeros((4, 4)), 0.25)


class TestAcceleration:
    def test_uniform_potential_no_force(self):
        phi = np.full((8, 8, 8), 2.5)
        g = acceleration_from_potential(phi, 0.125)
        np.testing.assert_allclose(g, 0.0, atol=1e-14)

    def test_linear_potential_constant_force(self):
        n = 8
        dx = 1.0 / n
        x = np.arange(n) * dx
        phi = np.broadcast_to(x[:, None, None], (n, n, n)).copy()
        g = acceleration_from_potential(phi, dx, periodic=False)
        np.testing.assert_allclose(g[0][2:-2], -1.0, atol=1e-12)
        np.testing.assert_allclose(g[1], 0.0, atol=1e-12)

    def test_a_scaling(self):
        rng = np.random.default_rng(3)
        phi = rng.standard_normal((8, 8, 8))
        g1 = acceleration_from_potential(phi, 0.125, a=1.0)
        g2 = acceleration_from_potential(phi, 0.125, a=2.0)
        np.testing.assert_allclose(g2, g1 / 2.0)


class TestMultigrid:
    def _sinusoid_problem(self, n):
        """Dirichlet problem with known solution phi = sin(pi x) sin(pi y) sin(pi z)."""
        dx = 1.0 / n
        x = (np.arange(n) + 0.5) * dx
        xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
        phi_exact = np.sin(np.pi * xx) * np.sin(np.pi * yy) * np.sin(np.pi * zz)
        # use the DISCRETE operator for the rhs so the test isolates solver
        # convergence from discretisation error
        padded = np.zeros((n + 2,) * 3)
        padded[1:-1, 1:-1, 1:-1] = phi_exact
        xb = np.concatenate([[-0.5 * dx], x, [1 + 0.5 * dx]])
        xxb, yyb, zzb = np.meshgrid(xb, xb, xb, indexing="ij")
        padded = np.sin(np.pi * xxb) * np.sin(np.pi * yyb) * np.sin(np.pi * zzb)
        lap = (
            padded[2:, 1:-1, 1:-1] + padded[:-2, 1:-1, 1:-1]
            + padded[1:-1, 2:, 1:-1] + padded[1:-1, :-2, 1:-1]
            + padded[1:-1, 1:-1, 2:] + padded[1:-1, 1:-1, :-2]
            - 6 * padded[1:-1, 1:-1, 1:-1]
        ) / dx**2
        boundary = padded.copy()
        boundary[1:-1, 1:-1, 1:-1] = 0.0  # interior: zero initial guess
        return lap, dx, boundary, padded

    @pytest.mark.parametrize("n", [8, 16])
    def test_converges_to_discrete_solution(self, n):
        src, dx, boundary, exact = self._sinusoid_problem(n)
        solver = MultigridSolver(tol=1e-10)
        phi = solver.solve(src, dx, boundary)
        err = np.abs(phi[1:-1, 1:-1, 1:-1] - exact[1:-1, 1:-1, 1:-1]).max()
        assert err < 1e-7 * np.abs(exact).max()

    def test_residual_reported(self):
        src, dx, boundary, _ = self._sinusoid_problem(8)
        solver = MultigridSolver(tol=1e-10)
        solver.solve(src, dx, boundary)
        assert solver.last_residual < 1e-10
        assert solver.last_cycles >= 1

    def test_vcycle_faster_than_smoothing(self):
        """V-cycles must converge in far fewer relaxations than plain GS."""
        src, dx, boundary, _ = self._sinusoid_problem(16)
        mg = MultigridSolver(tol=1e-8)
        mg.solve(src, dx, boundary)
        assert mg.last_cycles < 20  # plain GS would need O(n^2) ~ 256 sweeps

    def test_zero_source_keeps_harmonic_interior(self):
        """With zero source and linear boundary data the solution is linear."""
        n = 8
        dx = 1.0 / n
        xb = np.arange(-1, n + 1)[:, None, None] * np.ones((1, n + 2, n + 2))
        boundary = xb * dx
        src = np.zeros((n, n, n))
        phi = solve_dirichlet(src, dx, boundary, tol=1e-12)
        expected = boundary[1:-1, 1:-1, 1:-1]
        np.testing.assert_allclose(phi[1:-1, 1:-1, 1:-1], expected, atol=1e-9)

    def test_odd_size_grid_supported(self):
        """Non-power-of-two grids fall back to smoothing and still converge."""
        n = 7
        dx = 1.0 / n
        rng = np.random.default_rng(4)
        src = rng.standard_normal((n, n, n))
        boundary = np.zeros((n + 2,) * 3)
        solver = MultigridSolver(tol=1e-8, max_cycles=400)
        phi = solver.solve(src, dx, boundary)
        assert solver.last_residual < 1e-6

    def test_boundary_shape_validated(self):
        with pytest.raises(ValueError):
            solve_dirichlet(np.zeros((4, 4, 4)), 0.25, np.zeros((4, 4, 4)))

    def test_matches_fft_on_matching_problem(self):
        """Multigrid with exact boundary values reproduces the FFT solution."""
        n = 16
        dx = 1.0 / n
        rng = np.random.default_rng(5)
        s = rng.standard_normal((n, n, n))
        s -= s.mean()
        phi_fft = solve_periodic(s, dx)
        # wrap-around padded boundary from the FFT solution
        padded = np.pad(phi_fft, 1, mode="wrap")
        boundary = padded.copy()
        boundary[1:-1, 1:-1, 1:-1] = 0.0
        phi_mg = solve_dirichlet(s, dx, boundary, tol=1e-12)
        np.testing.assert_allclose(
            phi_mg[1:-1, 1:-1, 1:-1], phi_fft, atol=1e-8 * np.abs(phi_fft).max()
        )


class TestProlongation:
    def test_trilinear_reproduces_linear_fields_exactly(self):
        """Cell-centered trilinear prolongation is exact on linear data."""
        from repro.gravity.multigrid import _prolong_into

        m = 4
        c = np.arange(m + 2) - 0.5  # coarse centers incl. one-cell rim
        cx, cy, cz = np.meshgrid(c, c, c, indexing="ij")
        coarse = 2.0 * cx - 0.7 * cy + 0.3 * cz + 1.5
        fine = _prolong_into(coarse, (2 * m, 2 * m, 2 * m))
        f = (np.arange(2 * m) + 0.5) / 2.0  # fine centers, coarse units
        fx, fy, fz = np.meshgrid(f, f, f, indexing="ij")
        expected = 2.0 * fx - 0.7 * fy + 0.3 * fz + 1.5
        np.testing.assert_allclose(fine, expected, atol=1e-12)

    def test_trilinear_needs_fewer_vcycles_than_constant(self):
        n = 32
        dx = 1.0 / n
        rng = np.random.default_rng(7)
        src = rng.standard_normal((n, n, n))
        boundary = np.zeros((n + 2,) * 3)
        cycles = {}
        for mode in ("trilinear", "constant"):
            solver = MultigridSolver(tol=1e-8, prolongation=mode)
            solver.solve(src, dx, boundary)
            assert solver.last_residual <= 1e-8
            cycles[mode] = solver.last_cycles
        assert cycles["trilinear"] < cycles["constant"], cycles

    def test_unknown_prolongation_rejected(self):
        with pytest.raises(ValueError, match="prolongation"):
            MultigridSolver(prolongation="cubic")


class TestSmootherCaches:
    def test_checkerboard_masks_cached_and_correct(self):
        from repro.gravity.multigrid import _MASK_CACHE, _checkerboard

        shape = (6, 5, 4)
        red, black = _checkerboard(shape)
        assert _checkerboard(shape)[0] is red  # cached per shape
        assert shape in _MASK_CACHE
        idx = np.indices(shape).sum(axis=0)
        np.testing.assert_array_equal(red, idx % 2 == 0)
        np.testing.assert_array_equal(black, idx % 2 == 1)
        assert not np.any(red & black)
        assert np.all(red | black)

    def test_smoother_matches_naive_sweep(self):
        """The buffered red-black sweep is bitwise the naive expression."""
        from repro.gravity.multigrid import _checkerboard, _redblack_smooth

        n = 8
        dx = 0.125
        rng = np.random.default_rng(11)
        phi = rng.standard_normal((n + 2,) * 3)
        src = rng.standard_normal((n, n, n))
        ref = phi.copy()
        h2 = dx * dx
        for mask in _checkerboard((n, n, n)):
            nb = (
                (((ref[2:, 1:-1, 1:-1] + ref[:-2, 1:-1, 1:-1])
                  + ref[1:-1, 2:, 1:-1]) + ref[1:-1, :-2, 1:-1])
                + ref[1:-1, 1:-1, 2:]
            ) + ref[1:-1, 1:-1, :-2]
            upd = (nb - h2 * src) / 6.0
            ref[1:-1, 1:-1, 1:-1][mask] = upd[mask]
        _redblack_smooth(phi, src, dx, sweeps=1)
        np.testing.assert_array_equal(phi, ref)
