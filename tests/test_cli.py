"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro.amr" in out
        assert "SC2001" in out

    def test_sod(self, capsys):
        assert main(["sod", "-n", "48"]) == 0
        assert "L1(density)" in capsys.readouterr().out

    def test_pancake(self, capsys):
        assert main(["pancake", "-n", "8", "--z-end", "20"]) == 0
        assert "pancake" in capsys.readouterr().out

    def test_collapse_quick(self, capsys):
        rc = main(["collapse", "-n", "8", "--levels", "1", "--z-end", "95",
                   "--max-steps", "8", "--no-chemistry"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "peak n" in out

    def test_collapse_with_checkpoint_and_inspect(self, tmp_path, capsys):
        ck = str(tmp_path / "state.npz")
        assert main(["collapse", "-n", "8", "--levels", "1", "--z-end", "97",
                     "--max-steps", "4", "--no-chemistry",
                     "--checkpoint", ck]) == 0
        capsys.readouterr()
        assert main(["inspect", ck]) == 0
        out = capsys.readouterr().out
        assert "n_grids" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
