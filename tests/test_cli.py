"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro.amr" in out
        assert "SC2001" in out

    def test_sod(self, capsys):
        assert main(["sod", "-n", "48"]) == 0
        assert "L1(density)" in capsys.readouterr().out

    def test_pancake(self, capsys):
        assert main(["pancake", "-n", "8", "--z-end", "20"]) == 0
        assert "pancake" in capsys.readouterr().out

    def test_collapse_quick(self, capsys):
        rc = main(["collapse", "-n", "8", "--levels", "1", "--z-end", "95",
                   "--max-steps", "8", "--no-chemistry"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "peak n" in out

    def test_collapse_with_checkpoint_and_inspect(self, tmp_path, capsys):
        ck = str(tmp_path / "state.npz")
        assert main(["collapse", "-n", "8", "--levels", "1", "--z-end", "97",
                     "--max-steps", "4", "--no-chemistry",
                     "--checkpoint", ck]) == 0
        capsys.readouterr()
        assert main(["inspect", ck]) == 0
        out = capsys.readouterr().out
        assert "n_grids" in out

    def test_inspect_prints_hierarchy_wide_fields(self, tmp_path, capsys):
        ck = str(tmp_path / "state.npz")
        assert main(["collapse", "-n", "8", "--levels", "1", "--z-end", "97",
                     "--max-steps", "2", "--no-chemistry",
                     "--checkpoint", ck]) == 0
        capsys.readouterr()
        assert main(["inspect", ck]) == 0
        out = capsys.readouterr().out
        for field in ("deepest_level", "finest_dx", "total_cells", "sdr"):
            assert field in out

    def test_run_resume_tail(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        rc = main(["run", "-n", "8", "--levels", "1", "--z-end", "80",
                   "--max-steps", "3", "--no-chemistry",
                   "--telemetry", run_dir, "--checkpoint-every", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "status = max_steps" in out
        # telemetry is valid JSONL with one step record per root step
        import json

        with open(f"{run_dir}/telemetry.jsonl") as fh:
            events = [json.loads(line) for line in fh]
        assert sum(e["event"] == "step" for e in events) == 3
        assert any("timers" in e for e in events if e["event"] == "step")

        assert main(["resume", "--dir", run_dir, "--max-steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "steps = 5" in out

        assert main(["tail", run_dir]) == 0
        out = capsys.readouterr().out
        assert "step" in out and "resume" in out and "checkpoints" in out

    def test_tail_missing_dir(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path / "nothing")]) == 1

    def test_resume_missing_dir(self, tmp_path, capsys):
        assert main(["resume", "--dir", str(tmp_path / "nothing")]) == 1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
