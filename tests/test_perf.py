"""Tests for the performance instrumentation layer."""

import time

import numpy as np
import pytest

from repro.perf import (
    ComponentTimers,
    HierarchyStats,
    OperationCounts,
    sustained_flop_rate,
    virtual_flop_rate,
)
from repro.perf.flops import unigrid_infeasibility


class TestComponentTimers:
    def test_sections_sum_to_wall(self):
        t = ComponentTimers()
        with t.section("a"):
            time.sleep(0.01)
        with t.section("b"):
            time.sleep(0.02)
        fr = t.fractions()
        assert fr["a"] > 0 and fr["b"] > fr["a"]
        assert abs(sum(fr.values()) - 1.0) < 1e-9

    def test_nested_exclusive(self):
        t = ComponentTimers()
        with t.section("outer"):
            time.sleep(0.01)
            with t.section("inner"):
                time.sleep(0.02)
            time.sleep(0.01)
        # inner time must NOT be charged to outer
        assert t.totals["inner"] == pytest.approx(0.02, abs=0.01)
        assert t.totals["outer"] == pytest.approx(0.02, abs=0.01)

    def test_counts(self):
        t = ComponentTimers()
        for _ in range(3):
            with t.section("x"):
                pass
        assert t.counts["x"] == 3

    def test_report_format(self):
        t = ComponentTimers()
        with t.section("hydrodynamics"):
            time.sleep(0.005)
        rep = t.report()
        assert "hydrodynamics" in rep
        assert "%" in rep

    def test_reset(self):
        t = ComponentTimers()
        with t.section("a"):
            pass
        t.reset()
        assert not t.totals


class TestHierarchyStats:
    def test_record_and_series(self):
        from repro.amr import Hierarchy

        h = Hierarchy(n_root=8)
        s = HierarchyStats()
        s.record_step(h, 0, 0.1, 0.1)
        s.record_step(h, 1, 0.05, 0.1)  # non-root: counted but not a sample
        s.record_step(h, 0, 0.1, 0.2)
        ser = s.series()
        assert len(ser["time"]) == 2
        assert s.level_steps[0] == 2 and s.level_steps[1] == 1

    def test_work_per_level_normalised(self):
        from repro.amr import Grid, Hierarchy

        h = Hierarchy(n_root=8)
        h.add_grid(Grid(1, (4, 4, 4), (8, 8, 8), n_root=8), h.root)
        s = HierarchyStats()
        w = s.work_per_level(h)
        assert w.max() == 1.0
        assert len(w) == 2
        # level 1: 512 cells x 2 substeps = 1024 vs root 512 -> level 1 wins
        assert w[1] == 1.0 and w[0] == 0.5

    def test_snapshot(self):
        from repro.amr import Hierarchy

        h = Hierarchy(n_root=8)
        s = HierarchyStats()
        s.snapshot_levels(h, 1.0)
        assert s.snapshots[1.0] == [1]

    def test_report(self):
        from repro.amr import Hierarchy

        h = Hierarchy(n_root=8)
        s = HierarchyStats()
        assert "no steps" in s.report()
        s.record_step(h, 0, 0.1, 0.1)
        assert "max level" in s.report()


class TestFlops:
    def test_operation_counts_accumulate(self):
        oc = OperationCounts()
        oc.add_hydro(1000)
        oc.add_gravity(1000)
        oc.add_chemistry(1000, substeps=10)
        oc.add_particles(500)
        assert oc.total > 0
        fr = oc.fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-12
        assert fr["chemistry"] > fr["poisson"]  # 10 substeps dominate

    def test_sustained_rate(self):
        assert sustained_flop_rate(1e12, 100.0) == pytest.approx(1e10)

    def test_virtual_flop_rate_matches_paper(self):
        """Paper: 1e12^3 cells x 1e10 steps ~ 1e50 ops in 1e6 s -> ~1e44."""
        rate = virtual_flop_rate(sdr=1e12, n_steps=1e10, wall_seconds=1e6)
        assert 1e43 < rate < 1e45

    def test_unigrid_infeasibility_matches_paper(self):
        """Paper: a 1e12^3 unigrid wouldn't fit in memory 'until about 2200'
        under Moore's law — i.e. roughly two centuries from 2001."""
        years = unigrid_infeasibility(sdr=1e12)
        assert 100 < years < 350

    def test_unigrid_feasible_small(self):
        assert unigrid_infeasibility(sdr=100.0) == 0.0
