"""Tests for the run-supervision layer (repro.runtime.supervision):
heartbeats, staleness deadlines, the escalation ladder, checkpoint
digests, and the new liveness fault kinds."""

import json
import os
import threading

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.io.checkpoint import (
    QUARANTINE_SUFFIX,
    load_hierarchy,
    verify_run_dir,
)
from repro.runtime import faults
from repro.runtime.checkpoint_policy import (
    CheckpointPolicy,
    digest_path,
    file_sha256,
    verify_digest,
    write_digest,
)
from repro.runtime.supervision import (
    HeartbeatWriter,
    SupervisionPolicy,
    Supervisor,
    heartbeat_age,
    heartbeat_path,
    read_heartbeat,
)
from repro.runtime.telemetry import read_events, telemetry_path


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    faults.clear()
    yield
    faults.clear()


def build_sim() -> Simulation:
    """Same small self-gravitating collapse the runtime tests evolve."""
    from repro.nbody.particles import ParticleSet

    sim = Simulation(SimulationConfig(
        n_root=8, self_gravity=True, max_level=1, refine_overdensity=3.0,
        g_code=2.0, cfl=0.3,
    ))
    sim.set_density(lambda x, y, z: 1 + 10 * np.exp(
        -((x - .5) ** 2 + (y - .5) ** 2 + (z - .5) ** 2) / 0.01))
    sim.set_field("internal", lambda x, y, z: np.full_like(x, 0.05))
    rng = np.random.default_rng(3)
    sim.hierarchy.particles = ParticleSet.from_arrays(
        rng.random((20, 3)), 0.01 * rng.standard_normal((20, 3)),
        np.full(20, 1e-3))
    sim.initialize()
    return sim


T_END = 0.8


def assert_hierarchies_identical(ha, hb):
    assert ha.grids_per_level() == hb.grids_per_level()
    for ga, gb in zip(ha.all_grids(), hb.all_grids()):
        assert float(ga.time.hi) == float(gb.time.hi)
        assert float(ga.time.lo) == float(gb.time.lo)
        for name, arr in ga.fields.array_items():
            np.testing.assert_array_equal(arr, gb.fields[name], err_msg=name)
        np.testing.assert_array_equal(ga.phi, gb.phi)


# ---------------------------------------------------------------- heartbeats
class TestHeartbeat:
    def test_roundtrip(self, tmp_path):
        w = HeartbeatWriter(str(tmp_path))
        assert w.beat(step=3, phase="root_step", force=True)
        record = read_heartbeat(str(tmp_path))
        assert record["step"] == 3
        assert record["phase"] == "root_step"
        assert record["seq"] == 1
        assert record["pid"] == os.getpid()
        assert heartbeat_age(record) >= 0.0

    def test_sequence_continues_across_writers(self, tmp_path):
        """Build → episode → resume hand-offs look like ONE monotonic
        sequence to the daemon, so a writer restart never fakes progress
        loss (or progress)."""
        HeartbeatWriter(str(tmp_path)).beat(phase="build", force=True)
        w2 = HeartbeatWriter(str(tmp_path))
        w2.beat(step=1, force=True)
        w2.beat(step=2, force=True)
        assert read_heartbeat(str(tmp_path))["seq"] == 3

    def test_unforced_beats_are_rate_limited(self, tmp_path):
        w = HeartbeatWriter(str(tmp_path), min_interval=60.0)
        assert w.beat(step=1, force=True)
        assert not w.beat(phase="hydro")  # inside the interval: dropped
        assert read_heartbeat(str(tmp_path))["step"] == 1

    def test_missing_and_torn_reads_return_none(self, tmp_path):
        assert read_heartbeat(str(tmp_path)) is None
        with open(heartbeat_path(str(tmp_path)), "w") as fh:
            fh.write('{"seq": 1, "ste')  # torn write (non-atomic editor)
        assert read_heartbeat(str(tmp_path)) is None

    def test_no_torn_reads_under_concurrent_writer(self, tmp_path):
        """Property test: os.replace means a reader sees complete records
        only — every parse either fails cleanly on a missing file or
        yields a full record, never a partial one."""
        stop = threading.Event()
        errors = []

        def writer():
            w = HeartbeatWriter(str(tmp_path), min_interval=0.0)
            i = 0
            while not stop.is_set():
                w.beat(step=i, phase=f"phase-{i}", force=True)
                i += 1

        t = threading.Thread(target=writer)
        t.start()
        try:
            seen = 0
            last_seq = 0
            while seen < 500:
                record = read_heartbeat(str(tmp_path))
                if record is None:
                    continue
                seen += 1
                try:
                    # a torn record would miss keys or carry a mismatched
                    # step/phase pair
                    assert set(record) >= {"seq", "step", "phase", "wall"}
                    assert record["phase"] == f"phase-{record['step']}"
                    assert record["seq"] >= last_seq
                    last_seq = record["seq"]
                except AssertionError as exc:
                    errors.append(str(exc))
                    break
        finally:
            stop.set()
            t.join()
        assert not errors


# -------------------------------------------------------------------- policy
class TestSupervisionPolicy:
    def test_deadline_clamps(self):
        p = SupervisionPolicy(deadline_multiplier=10.0, deadline_floor=30.0,
                              deadline_ceiling=900.0)
        assert p.deadline(None) == 900.0  # unmeasured: the ceiling
        assert p.deadline(0.0) == 900.0
        assert p.deadline(1.0) == 30.0    # 10x1s clamped up to the floor
        assert p.deadline(10.0) == 100.0  # in band: multiplier rules
        assert p.deadline(1e6) == 900.0   # clamped down to the ceiling

    def test_backoff_doubles_and_caps(self):
        p = SupervisionPolicy(backoff_base=1.0, backoff_cap=6.0)
        assert [p.backoff(i) for i in range(6)] == \
            [0.0, 1.0, 2.0, 4.0, 6.0, 6.0]


# ---------------------------------------------------------------- supervisor
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestSupervisor:
    def test_escalation_drain_then_kill(self):
        clock = FakeClock()
        policy = SupervisionPolicy(grace_seconds=5.0)
        sup = Supervisor(policy, clock=clock)
        sup.watch("r1")
        hb = {"seq": 1, "step": 0}
        assert sup.check("r1", hb, deadline=10.0) is None
        clock.now = 11.0  # same seq the whole time: stale past deadline
        action, info = sup.check("r1", hb, deadline=10.0)
        assert action == "drain"
        assert info["reason"] == "stalled"
        assert info["stale_seconds"] == pytest.approx(11.0)
        clock.now = 13.0  # inside the grace window: nothing new
        assert sup.check("r1", hb, deadline=10.0) is None
        clock.now = 16.1  # grace expired
        action, info = sup.check("r1", hb, deadline=10.0)
        assert action == "kill"
        assert info["reason"] == "stalled"
        # the kill is issued exactly once
        clock.now = 100.0
        assert sup.check("r1", hb, deadline=10.0) is None

    def test_progress_resets_staleness(self):
        clock = FakeClock()
        sup = Supervisor(SupervisionPolicy(), clock=clock)
        sup.watch("r1")
        clock.now = 9.0
        assert sup.check("r1", {"seq": 1}, deadline=10.0) is None
        clock.now = 18.0  # seq moved at t=9: only 9s stale now
        assert sup.check("r1", {"seq": 2}, deadline=10.0) is None
        assert sup.staleness("r1") == pytest.approx(0.0)
        clock.now = 29.0  # no seq change since t=18
        action, _ = sup.check("r1", {"seq": 2}, deadline=10.0)
        assert action == "drain"

    def test_identical_rewrites_cannot_fake_progress(self):
        """Judged by seq change, not file mtime or worker wall-clock."""
        clock = FakeClock()
        sup = Supervisor(SupervisionPolicy(), clock=clock)
        sup.watch("r1")
        clock.now = 9.0
        # first observation of seq 1 counts as progress
        assert sup.check("r1", {"seq": 1, "wall": 1e12},
                         deadline=10.0) is None
        clock.now = 23.0
        action, _ = sup.check("r1", {"seq": 1, "wall": 2e12},
                              deadline=10.0)
        assert action == "drain"

    def test_budget_reason_drains_regardless_of_liveness(self):
        clock = FakeClock()
        sup = Supervisor(SupervisionPolicy(), clock=clock)
        sup.watch("r1")
        action, info = sup.check("r1", {"seq": 1}, deadline=10.0,
                                 budget_reason="budget_exceeded")
        assert action == "drain"
        assert info["reason"] == "budget_exceeded"

    def test_missing_heartbeat_counts_as_stale(self):
        clock = FakeClock()
        sup = Supervisor(SupervisionPolicy(), clock=clock)
        sup.watch("r1")
        clock.now = 11.0
        action, _ = sup.check("r1", None, deadline=10.0)
        assert action == "drain"


# ---------------------------------------------------------------- digests
class TestCheckpointDigests:
    def _npz(self, path):
        with open(path, "wb") as fh:
            np.savez_compressed(fh, x=np.arange(8, dtype=np.float64))
        return str(path)

    def test_write_and_verify(self, tmp_path):
        path = self._npz(tmp_path / "chk_0000001.npz")
        digest = write_digest(path)
        assert digest == file_sha256(path)
        assert verify_digest(path)
        assert os.path.exists(digest_path(path))

    def test_missing_sidecar_policy(self, tmp_path):
        path = self._npz(tmp_path / "chk_0000001.npz")
        assert verify_digest(path)                     # lenient default
        assert not verify_digest(path, missing_ok=False)  # strict scrub

    def test_detects_corruption(self, tmp_path):
        path = self._npz(tmp_path / "chk_0000001.npz")
        write_digest(path)
        faults.apply_checkpoint_bitflip(path)
        assert not verify_digest(path)

    def test_torn_sidecar_vouches_for_nothing(self, tmp_path):
        path = self._npz(tmp_path / "chk_0000001.npz")
        with open(digest_path(path), "w") as fh:
            fh.write("")
        assert not verify_digest(path)

    def test_bitflip_still_loads_without_digests(self, tmp_path):
        """The failure mode digests exist for: corrupt but loadable."""
        run_dir = str(tmp_path / "r")
        sim = build_sim()
        sim.make_controller(run_dir).run(T_END, max_root_steps=2)
        step, npz, _state = CheckpointPolicy.latest(run_dir)
        clean = file_sha256(npz)
        faults.apply_checkpoint_bitflip(npz)
        assert file_sha256(npz) != clean
        load_hierarchy(npz)  # no exception: silently wrong physics
        assert not verify_digest(npz)


# ----------------------------------------------------------- fault plumbing
class TestLivenessFaults:
    def test_parse_seconds_and_attempt(self):
        specs = faults.parse_spec(
            "hang:level=0,step=3,seconds=60,attempt=1;"
            "slow_step:seconds=0.5;io_stall:step=2;checkpoint_bitflip:step=4")
        assert [s.kind for s in specs] == \
            ["hang", "slow_step", "io_stall", "checkpoint_bitflip"]
        assert specs[0].seconds == 60.0 and specs[0].attempt == 1
        assert specs[1].seconds == 0.5
        assert specs[2].seconds is None

    def test_attempt_scoping(self):
        spec = faults.FaultSpec("hang", attempt=1, seconds=0.0)
        inj1 = faults.FaultInjector([spec], attempt=1)
        assert inj1.take("hang") is not None
        spec2 = faults.FaultSpec("hang", attempt=1, seconds=0.0)
        inj2 = faults.FaultInjector([spec2], attempt=2)
        assert inj2.take("hang") is None  # wrong episode: inert

    def test_maybe_sleep_uses_spec_seconds(self, monkeypatch):
        slept = []
        monkeypatch.setattr(faults.time, "sleep", slept.append)
        faults.install(faults.FaultInjector(
            [faults.FaultSpec("slow_step", seconds=0.125)]))
        fire = faults.maybe_sleep("slow_step")
        assert fire is not None and slept == [0.125]
        assert faults.maybe_sleep("slow_step") is None  # budget spent
        assert slept == [0.125]

    def test_slow_step_is_bitwise_invisible(self, tmp_path):
        """Timing faults must never change physics."""
        sim_a = build_sim()
        sim_a.make_controller(str(tmp_path / "a")).run(
            T_END, max_root_steps=3)
        faults.install(faults.FaultInjector(
            [faults.FaultSpec("slow_step", level=0, count=3,
                              seconds=0.01)]))
        sim_b = build_sim()
        sim_b.make_controller(str(tmp_path / "b")).run(
            T_END, max_root_steps=3)
        inj = faults.active()
        assert inj.fired, "slow_step never fired"
        assert_hierarchies_identical(sim_a.hierarchy, sim_b.hierarchy)


# --------------------------------------------------- controller integration
class TestControllerIntegration:
    def test_run_writes_heartbeats(self, tmp_path):
        run_dir = str(tmp_path / "r")
        sim = build_sim()
        sim.make_controller(run_dir).run(T_END, max_root_steps=2)
        record = read_heartbeat(run_dir)
        assert record is not None
        assert record["step"] == 2
        assert record["phase"].startswith("exit:")
        assert record["seq"] > 2  # phase beats fired along the way

    def test_checkpoints_carry_digests(self, tmp_path):
        run_dir = str(tmp_path / "r")
        sim = build_sim()
        sim.make_controller(run_dir).run(T_END, max_root_steps=2)
        pairs = CheckpointPolicy.list_checkpoints(run_dir)
        assert pairs
        for _step, npz, state in pairs:
            assert verify_digest(npz, missing_ok=False)
            assert verify_digest(state, missing_ok=False)

    def test_rotation_removes_digests(self, tmp_path):
        run_dir = str(tmp_path / "r")
        sim = build_sim()
        policy = CheckpointPolicy(every_steps=1, keep_last=2)
        sim.make_controller(run_dir, policy=policy).run(
            T_END, max_root_steps=4)
        names = set(os.listdir(run_dir))
        sidecars = {n for n in names if n.endswith(".sha256")}
        assert sidecars == {
            "chk_0000003.npz.sha256", "chk_0000003.json.sha256",
            "chk_0000004.npz.sha256", "chk_0000004.json.sha256",
        }

    def test_resume_rejects_bitflipped_pair_and_stays_bit_exact(
            self, tmp_path):
        """End-to-end acceptance: the newest pair is silently corrupted;
        resume falls back to the older verified pair and still matches an
        uninterrupted run bit for bit."""
        n, total = 4, 6
        dir_a, dir_b = str(tmp_path / "a"), str(tmp_path / "b")
        sim_a = build_sim()
        sim_a.make_controller(dir_a).run(T_END, max_root_steps=total)

        sim_b = build_sim()
        policy = CheckpointPolicy(every_steps=2, keep_last=3)
        sim_b.make_controller(dir_b, policy=policy).run(
            T_END, max_root_steps=n)
        step, npz, _state = CheckpointPolicy.latest(dir_b)
        assert step == n
        faults.apply_checkpoint_bitflip(npz)

        sim_b2 = build_sim()
        ctl = sim_b2.make_controller(dir_b, policy=policy)
        out = ctl.resume(max_root_steps=total)
        assert out["steps"] == total
        assert_hierarchies_identical(sim_a.hierarchy, sim_b2.hierarchy)
        events = read_events(telemetry_path(dir_b))
        rejected = [e for e in events
                    if e.get("event") == "checkpoint_rejected"]
        assert rejected and rejected[0]["step"] == n
        assert rejected[0]["reason"] == "digest_mismatch"

    def test_injected_bitflip_fault_detected_on_resume(self, tmp_path):
        """The fault-kind path: checkpoint_bitflip fires inside
        _checkpoint, after the digest was written over good bytes."""
        run_dir = str(tmp_path / "r")
        faults.install(faults.FaultInjector(
            [faults.FaultSpec("checkpoint_bitflip", step=2)]))
        sim = build_sim()
        sim.make_controller(run_dir).run(T_END, max_root_steps=2)
        assert faults.active().fired
        faults.clear()
        _step, npz, _state = CheckpointPolicy.latest(run_dir)
        assert not verify_digest(npz)

    def test_supervised_run_identical_to_unsupervised(self, tmp_path):
        """Heartbeats and digests are pure observation: byte-identical
        physics with or without them (here: vs the pre-supervision world,
        approximated by a second identical run — determinism holds)."""
        sim_a = build_sim()
        sim_a.make_controller(str(tmp_path / "a")).run(
            T_END, max_root_steps=3)
        sim_b = build_sim()
        sim_b.make_controller(str(tmp_path / "b")).run(
            T_END, max_root_steps=3)
        assert_hierarchies_identical(sim_a.hierarchy, sim_b.hierarchy)


# ------------------------------------------------------------------- scrub
class TestVerifyRunDir:
    def _run(self, tmp_path, steps=4):
        run_dir = str(tmp_path / "r")
        sim = build_sim()
        policy = CheckpointPolicy(every_steps=1, keep_last=4)
        sim.make_controller(run_dir, policy=policy).run(
            T_END, max_root_steps=steps)
        return run_dir

    def test_clean_dir_reports_ok(self, tmp_path):
        run_dir = self._run(tmp_path)
        report = verify_run_dir(run_dir)
        assert report["corrupt"] == []
        assert {e["status"] for e in report["checked"]} == {"ok"}

    def test_reports_corrupt_pair(self, tmp_path):
        run_dir = self._run(tmp_path)
        _step, npz, _state = CheckpointPolicy.latest(run_dir)
        faults.apply_checkpoint_bitflip(npz)
        report = verify_run_dir(run_dir)
        assert len(report["corrupt"]) == 1
        assert "digest mismatch" in report["corrupt"][0]["detail"]
        assert report["quarantined"] == []

    def test_quarantine_renames_pair(self, tmp_path):
        run_dir = self._run(tmp_path)
        step, npz, state = CheckpointPolicy.latest(run_dir)
        faults.apply_checkpoint_bitflip(npz)
        report = verify_run_dir(run_dir, quarantine=True)
        assert report["quarantined"] == [step]
        assert not os.path.exists(npz)
        assert os.path.exists(npz + QUARANTINE_SUFFIX)
        # recovery no longer sees the quarantined pair
        remaining = CheckpointPolicy.list_checkpoints(run_dir)
        assert step not in [s for s, _n, _j in remaining]

    def test_strict_flags_missing_sidecars(self, tmp_path):
        run_dir = self._run(tmp_path, steps=2)
        _step, npz, _state = CheckpointPolicy.latest(run_dir)
        os.unlink(digest_path(npz))
        assert verify_run_dir(run_dir)["corrupt"] == []  # lenient default
        strict = verify_run_dir(run_dir, strict=True)
        assert len(strict["corrupt"]) == 1

    def test_cli_chk_verify(self, tmp_path, capsys):
        from repro.__main__ import main

        run_dir = self._run(tmp_path, steps=2)
        assert main(["chk", "verify", run_dir]) == 0
        _step, npz, _state = CheckpointPolicy.latest(run_dir)
        faults.apply_checkpoint_bitflip(npz)
        assert main(["chk", "verify", run_dir, "--quarantine"]) == 1
        out = capsys.readouterr().out
        assert "corrupt" in out and "quarantined" in out
