"""Property-based tests of AMR invariants over randomised configurations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr import Grid, Hierarchy
from repro.amr.boundary import set_boundary_values
from repro.amr.flux_correction import (
    accumulate_boundary_fluxes,
    apply_flux_correction,
    init_flux_accumulator,
)
from repro.amr.projection import project_child_to_parent
from repro.amr.rebuild import _fill_new_grid
from repro.hydro import PPMSolver
from repro.hydro.state import fill_ghosts_periodic, total_energy
from repro.precision.doubledouble import DoubleDouble


def _composite_mass(h):
    covered = h.covering_mask(h.root)
    m = (h.root.field_view("density") * ~covered).sum() * h.root.dx**3
    for g in h.level_grids(1):
        m += g.field_view("density").sum() * g.dx**3
    return m


@given(
    start=st.tuples(*(st.integers(0, 4) for _ in range(3))),
    dims=st.tuples(*(st.sampled_from([4, 6, 8]) for _ in range(3))),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=10, deadline=None)
def test_flux_corrected_composite_mass_conserved(start, dims, seed):
    """For arbitrary (nested) child placements and random smooth flows, the
    flux-corrected + projected composite conserves mass to round-off."""
    n_root = 8
    start = tuple(2 * min(s, (2 * n_root - d) // 2) for s, d in zip(start, dims))
    child_start = tuple(min(2 * s, 2 * n_root - d) for s, d in zip(start, dims))
    # ensure even alignment and nesting
    child_start = tuple((cs // 2) * 2 for cs in child_start)

    rng = np.random.default_rng(seed)
    h = Hierarchy(n_root=n_root)
    root = h.root
    shape = root.shape_with_ghosts
    root.fields["density"][:] = 1.0 + 0.3 * rng.random(shape)
    root.fields["vx"][:] = 0.3 * rng.standard_normal(shape)
    root.fields["vy"][:] = 0.3 * rng.standard_normal(shape)
    root.fields["internal"][:] = 1.0 + 0.2 * rng.random(shape)
    fill_ghosts_periodic(root.fields, 3)
    root.fields["energy"] = total_energy(root.fields)

    child = Grid(1, child_start, dims, n_root=n_root)
    h.add_grid(child, root)
    _fill_new_grid(child, root, [])

    m0 = _composite_mass(h)
    solver = PPMSolver()
    dt = 1.5e-3
    root.save_old_state()
    root.last_fluxes = solver.step(root.fields, root.dx, dt)
    root.time = DoubleDouble(dt)
    init_flux_accumulator(child)
    for _ in range(2):
        set_boundary_values(h, 1)
        fl = solver.step(child.fields, child.dx, dt / 2)
        accumulate_boundary_fluxes(child, fl)
        child.time = DoubleDouble(child.time + dt / 2)
    apply_flux_correction(root, child)
    project_child_to_parent(child, root)
    m1 = _composite_mass(h)
    assert abs(m1 - m0) < 1e-9 * max(abs(m0), 1.0)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_projection_idempotent(seed):
    """Projecting twice changes nothing (restriction is a projection)."""
    rng = np.random.default_rng(seed)
    h = Hierarchy(n_root=8)
    child = Grid(1, (4, 4, 4), (8, 8, 8), n_root=8)
    h.add_grid(child, h.root)
    for name, arr in child.fields.array_items():
        arr[:] = 0.5 + rng.random(arr.shape)
    project_child_to_parent(child, h.root)
    snapshot = h.root.fields["density"].copy()
    project_child_to_parent(child, h.root)
    np.testing.assert_array_equal(h.root.fields["density"], snapshot)


@given(
    seed=st.integers(0, 2**31 - 1),
    level=st.integers(1, 30),
)
@settings(max_examples=15, deadline=None)
def test_deep_boundary_interpolation_finite(seed, level):
    """Ghost filling stays finite and conservative at any depth."""
    rng = np.random.default_rng(seed)
    n_root = 8
    h = Hierarchy(n_root=n_root)
    parent = h.root
    start = np.array([n_root // 2] * 3, dtype=np.int64)
    for lvl in range(1, level + 1):
        start = start * 2 - 2
        g = Grid(lvl, start, (4, 4, 4), n_root)
        h.add_grid(g, parent)
        parent = g
        start = start + 2
    deepest = h.level_grids(level)[0]
    p = deepest.parent
    p.fields["density"][:] = 1.0 + rng.random(p.shape_with_ghosts)
    from repro.amr.boundary import interpolate_from_parent

    interpolate_from_parent(deepest, p)
    assert np.all(np.isfinite(deepest.fields["density"]))
    assert np.all(deepest.fields["density"] > 0)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=8, deadline=None)
def test_evolver_keeps_positivity(seed):
    """Random blobs + AMR + gravity: density and energy stay positive."""
    from repro.amr import HierarchyEvolver, RefinementCriteria
    from repro.amr.gravity import HierarchyGravity
    from repro.amr.rebuild import rebuild_hierarchy

    rng = np.random.default_rng(seed)
    h = Hierarchy(n_root=8)
    root = h.root
    x, y, z = np.meshgrid(*root.cell_centres(), indexing="ij")
    cx, cy, cz = rng.uniform(0.3, 0.7, 3)
    r2 = (x - cx) ** 2 + (y - cy) ** 2 + (z - cz) ** 2
    root.fields["density"][root.interior] = 1.0 + rng.uniform(3, 15) * np.exp(-r2 / 0.01)
    root.fields["internal"][:] = rng.uniform(0.01, 0.5)
    root.fields["energy"][:] = root.fields["internal"]
    set_boundary_values(h, 0)
    crit = RefinementCriteria(overdensity_threshold=3.0, max_level=1)
    rebuild_hierarchy(h, 1, crit)
    grav = HierarchyGravity(
        g_code=1.0, mean_density=float(root.field_view("density").mean())
    )
    ev = HierarchyEvolver(h, PPMSolver(), gravity=grav, criteria=crit,
                          cfl=0.3, max_level=1)
    ev.advance_to(0.02)
    for g in h.all_grids():
        assert np.all(g.field_view("density") > 0)
        assert np.all(g.field_view("internal") > 0)
        assert np.all(np.isfinite(g.field_view("vx")))
