"""Tests for PPM characteristic tracing (the full CW84 predictor)."""

import numpy as np
import pytest

from repro.hydro import PPMSolver, hydro_timestep
from repro.hydro.state import fill_ghosts_periodic, make_fields, total_energy
from repro.hydro.tracing import trace_interface_states
from repro.problems import SodShockTube

GAMMA = 1.4
NG = 3


class TestTraceStates:
    def test_uniform_state_unchanged(self):
        n = 16
        rho = np.full(n, 2.0)
        u = np.full(n, 0.3)
        v = np.full(n, -0.1)
        w = np.zeros(n)
        p = np.full(n, 1.5)
        sl, sr = trace_interface_states(rho, u, v, w, p, dtdx=0.2, gamma=GAMMA)
        for arr, val in zip(sl, (2.0, 0.3, -0.1, 0.0, 1.5)):
            np.testing.assert_allclose(arr, val, rtol=1e-12)
        for arr, val in zip(sr, (2.0, 0.3, -0.1, 0.0, 1.5)):
            np.testing.assert_allclose(arr, val, rtol=1e-12)

    def test_face_array_shapes(self):
        n = 12
        rng = np.random.default_rng(0)
        args = [rng.random(n) + 0.5 for _ in range(2)] + [rng.standard_normal(n) * 0.1 for _ in range(2)]
        rho, p, u, v = args
        w = np.zeros(n)
        sl, sr = trace_interface_states(rho, u, v, w, p, 0.1, GAMMA)
        assert all(a.shape == (n - 1,) for a in sl)
        assert all(a.shape == (n - 1,) for a in sr)

    def test_supersonic_left_state_upwinded(self):
        """Supersonic right-moving flow: all waves from the left cell reach
        the face, so the traced left state is a pure parabola average —
        bounded by the cell's neighbourhood, no characteristic splitting."""
        n = 16
        x = np.arange(n, dtype=float)
        rho = 1.0 + 0.1 * np.sin(x)
        u = np.full(n, 10.0)  # Mach ~ 8
        p = np.ones(n)
        v = w = np.zeros(n)
        sl, _ = trace_interface_states(rho, u, v, w, p, 0.02, GAMMA)
        lo = np.minimum(rho[:-1], rho[1:]) - 0.12
        hi = np.maximum(rho[:-1], rho[1:]) + 0.12
        assert np.all((sl[0] > lo) & (sl[0] < hi))

    def test_zero_dt_reduces_to_edges(self):
        """dtdx -> 0: traced states equal the plain PPM edge states."""
        from repro.hydro.reconstruction import ppm_reconstruct

        n = 20
        rng = np.random.default_rng(1)
        rho = rng.random(n) + 0.5
        u = 0.1 * rng.standard_normal(n)
        p = rng.random(n) + 0.5
        v = w = np.zeros(n)
        sl, sr = trace_interface_states(rho, u, v, w, p, 0.0, GAMMA)
        el, er = ppm_reconstruct(rho)
        np.testing.assert_allclose(sl[0], el, atol=1e-12)
        np.testing.assert_allclose(sr[0], er, atol=1e-12)


class TestTracedSolver:
    def test_sod_sharper_than_untraced(self):
        errs = {}
        for trace in (False, True):
            sod = SodShockTube(n=96)
            sod.run(0.2, solver=PPMSolver(gamma=GAMMA,
                                          characteristic_tracing=trace))
            errs[trace] = sod.l1_error()
        assert errs[True] < 0.7 * errs[False]

    def test_conservation_preserved(self):
        rng = np.random.default_rng(2)
        n = 12
        shape = (n + 2 * NG,) * 3
        f = make_fields(shape, density=1.0, internal_energy=1.0)
        f["density"][:] = 1.0 + 0.3 * rng.random(shape)
        f["vx"][:] = 0.2 * rng.standard_normal(shape)
        fill_ghosts_periodic(f, NG)
        f["energy"] = total_energy(f)
        sl = (slice(NG, -NG),) * 3
        m0 = f["density"][sl].sum()
        solver = PPMSolver(characteristic_tracing=True)
        for step in range(8):
            fill_ghosts_periodic(f, NG)
            dt = hydro_timestep(f, 1.0 / n, cfl=0.4)
            solver.step(f, 1.0 / n, dt, permute=step)
        assert abs(f["density"][sl].sum() - m0) < 1e-10 * m0

    def test_positivity_strong_rarefaction(self):
        n = 48
        shape = (n + 2 * NG, 1 + 2 * NG, 1 + 2 * NG)
        f = make_fields(shape, density=1.0, internal_energy=1.0)
        x = (np.arange(n + 2 * NG) - NG + 0.5) / n
        f["vx"][:] = np.where(x < 0.5, -2.0, 2.0)[:, None, None]
        f["energy"][:] = total_energy(f)
        solver = PPMSolver(gamma=GAMMA, characteristic_tracing=True)
        from repro.hydro.state import fill_ghosts_outflow

        for step in range(30):
            fill_ghosts_outflow(f, NG)
            dt = hydro_timestep(f, 1.0 / n, cfl=0.4, gamma=GAMMA)
            solver.step(f, 1.0 / n, dt, permute=step)
        assert np.all(f["density"] > 0)
        assert np.all(f["internal"] > 0)

    def test_uniform_flow_exact(self):
        shape = (10 + 2 * NG,) * 3
        f = make_fields(shape, density=2.0, velocity=(0.4, -0.2, 0.1),
                        internal_energy=1.0)
        solver = PPMSolver(characteristic_tracing=True)
        for step in range(6):
            fill_ghosts_periodic(f, NG)
            solver.step(f, 0.1, 0.01, permute=step)
        sl = (slice(NG, -NG),) * 3
        np.testing.assert_allclose(f["density"][sl], 2.0, rtol=1e-12)
        np.testing.assert_allclose(f["vx"][sl], 0.4, rtol=1e-11)
