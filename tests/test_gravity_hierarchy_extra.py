"""Extra coverage: sibling-iterated gravity, nested IC velocities, corner
ghosts, literature rate spot-checks."""

import numpy as np
import pytest

from repro.amr import Grid, Hierarchy
from repro.amr.boundary import set_boundary_values
from repro.amr.gravity import HierarchyGravity
from repro.amr.projection import block_average


class TestSiblingIteratedGravity:
    """Two adjacent subgrids must converge to a consistent joint potential
    (the paper's iterate: solve separately, exchange, solve again)."""

    @pytest.fixture(scope="class")
    def setup(self):
        n = 16
        h = Hierarchy(n_root=n)
        root = h.root
        x, y, z = np.meshgrid(*root.cell_centres(), indexing="ij")
        r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2
        root.fields["density"][root.interior] = 1.0 + 20.0 * np.exp(-r2 / 0.004)
        set_boundary_values(h, 0)
        # two children sharing a face, splitting the blob down the middle
        a = Grid(1, (8, 8, 8), (8, 16, 16), n_root=n)
        b = Grid(1, (16, 8, 8), (8, 16, 16), n_root=n)
        h.add_grid(a, root)
        h.add_grid(b, root)
        from repro.amr.rebuild import _fill_new_grid

        grav = HierarchyGravity(
            g_code=1.0,
            mean_density=float(root.field_view("density").mean()),
            sibling_iterations=3,
        )
        grav.solve_level(h, 0)
        _fill_new_grid(a, root, [])
        _fill_new_grid(b, root, [])
        grav.solve_level(h, 1)
        return h, a, b, grav

    def test_potential_continuous_across_shared_face(self, setup):
        h, a, b, grav = setup
        ng = a.nghost
        # last interior plane of a vs first of b
        phi_a = a.phi[ng + 7, ng : ng + 16, ng : ng + 16]
        phi_b = b.phi[ng, ng : ng + 16, ng : ng + 16]
        scale = np.abs(h.root.phi[h.root.interior]).max()
        jump = np.abs(phi_a - phi_b).max()
        # adjacent fine cells differ by ~ dx * dphi/dx; require no wild jump
        assert jump < 0.3 * scale

    def test_children_match_root_solution(self, setup):
        h, a, b, grav = setup
        for child in (a, b):
            child_avg = block_average(child.phi[child.interior], 2)
            lo, hi = child.parent_index_region()
            ng = h.root.nghost
            root_phi = h.root.phi[
                ng + lo[0] : ng + hi[0], ng + lo[1] : ng + hi[1],
                ng + lo[2] : ng + hi[2],
            ]
            scale = np.abs(h.root.phi[h.root.interior]).max()
            assert np.abs(child_avg - root_phi).max() < 0.15 * scale

    def test_acceleration_symmetric_about_blob(self, setup):
        h, a, b, grav = setup
        acc_a = grav.acceleration(a)
        acc_b = grav.acceleration(b)
        ng = a.nghost
        # x-acceleration points toward the blob centre (x=0.5): positive in
        # a (left of centre... a spans [0.25,0.5]) and negative in b
        ax = acc_a[0][ng + 2, ng + 8, ng + 8]
        bx = acc_b[0][ng + 5, ng + 8, ng + 8]
        assert ax > 0 and bx < 0


class TestNestedICVelocities:
    def test_level_velocities_consistent(self):
        """The static-level velocity fields average to the coarse ones."""
        from repro.cosmology import CodeUnits, NestedGridIC, STANDARD_CDM
        from repro.cosmology.gaussian_field import degrade_field

        units = CodeUnits.for_cosmology(STANDARD_CDM, 256.0, 100.0)
        nested = NestedGridIC(STANDARD_CDM, units, 100.0, n_root=8,
                              static_levels=1, seed=11)
        lv = nested.level_fields()
        vx_coarse_region = lv[0].velocity[0][2:6, 2:6, 2:6]
        vx_avg = degrade_field(lv[1].velocity[0], 2)
        np.testing.assert_allclose(vx_avg, vx_coarse_region, rtol=1e-10)


class TestCornerGhosts:
    def test_corner_ghosts_filled_from_parent(self):
        """Corner ghost cells (no sibling, off every face) must still be
        physical after SetBoundaryValues — they feed the 3-d sweeps."""
        h = Hierarchy(n_root=8)
        root = h.root
        root.fields["density"][:] = 3.0
        set_boundary_values(h, 0)
        child = Grid(1, (4, 4, 4), (8, 8, 8), n_root=8)
        h.add_grid(child, root)
        child.fields["density"][child.interior] = 5.0
        set_boundary_values(h, 1)
        # the very corner of the ghost region
        assert child.fields["density"][0, 0, 0] == pytest.approx(3.0)
        assert child.fields["density"][-1, -1, -1] == pytest.approx(3.0)


class TestRateSpotChecks:
    """Anchor a few coefficients to literature values (order-of-magnitude
    checks that would catch unit or exponent slips)."""

    def test_h2_formation_hm_channel_scale(self):
        from repro.chemistry.rates import RateTable

        # associative detachment ~1.3e-9 cm^3/s
        assert RateTable.k8_H2_from_HM(500.0) == pytest.approx(1.3e-9, rel=0.1)

    def test_three_body_at_1000K(self):
        from repro.chemistry.rates import RateTable

        # PSS83: 5.5e-29/T -> 5.5e-32 at 1000 K
        assert RateTable.k22_threebody_H2(1000.0) == pytest.approx(5.5e-32, rel=1e-6)

    def test_case_b_at_1e4(self):
        from repro.chemistry.rates import RateTable

        # alpha ~ 2.6e-13 at 1e4 K (Cen fit gives ~4e-13; same decade)
        val = RateTable.k2_HII_recombination(1e4)
        assert 1e-13 < val < 1e-12

    def test_h2_cooling_at_1000K_lowdensity(self):
        """GP98 LDL cooling per (n_H2 n_H) at 1000 K is ~1e-24 erg cm^3/s."""
        from repro.chemistry.cooling import h2_cooling

        n = {"H2I": np.atleast_1d(1.0), "HI": np.atleast_1d(1.0)}
        lam = h2_cooling(n, np.atleast_1d(1000.0)).item()
        assert 1e-26 < lam < 1e-23
