"""Tests for Grid geometry and the Hierarchy container."""

import numpy as np
import pytest

from repro.amr import Grid, Hierarchy
from repro.precision.position import PositionDD


class TestGridGeometry:
    def test_root_grid(self):
        g = Grid(0, (0, 0, 0), (8, 8, 8), n_root=8)
        assert g.dx == 1.0 / 8
        np.testing.assert_array_equal(g.left_edge, [0, 0, 0])
        np.testing.assert_array_equal(g.right_edge, [1, 1, 1])

    def test_subgrid_edges(self):
        g = Grid(1, (4, 6, 8), (4, 4, 4), n_root=8)
        assert g.dx == 1.0 / 16
        np.testing.assert_array_equal(g.left_edge, [0.25, 0.375, 0.5])
        np.testing.assert_array_equal(g.right_edge, [0.5, 0.625, 0.75])

    def test_deep_level_dx_exact(self):
        g = Grid(40, (0, 0, 0), (4, 4, 4), n_root=8)
        # dyadic: dx exactly representable
        assert g.dx == 2.0**-43

    def test_deep_level_edges_exact(self):
        # start index 3 * 2^38 at level 40: edge = 3 * 2^38 / 2^43 = 3/32
        g = Grid(40, (3 * 2**38, 0, 0), (4, 4, 4), n_root=8)
        assert g.left_edge[0] == 3.0 / 32.0

    def test_left_edge_dd(self):
        g = Grid(2, (5, 0, 0), (4, 4, 4), n_root=8)
        dd = g.left_edge_dd
        assert isinstance(dd, PositionDD)
        assert dd.hi[0] == 5.0 / 32.0

    def test_shapes(self):
        g = Grid(0, (0, 0, 0), (8, 6, 4), n_root=8, nghost=3)
        assert g.shape_with_ghosts == (14, 12, 10)
        assert g.n_cells == 8 * 6 * 4

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Grid(0, (0, 0, 0), (0, 4, 4), n_root=8)

    def test_cell_centres(self):
        g = Grid(1, (4, 4, 4), (2, 2, 2), n_root=4)
        cx = g.cell_centres()[0]
        np.testing.assert_allclose(cx, [(4.5) / 8, (5.5) / 8])

    def test_overlap(self):
        a = Grid(1, (0, 0, 0), (8, 8, 8), n_root=8)
        b = Grid(1, (4, 4, 4), (8, 8, 8), n_root=8)
        lo, hi = a.overlap_with(b)
        np.testing.assert_array_equal(lo, [4, 4, 4])
        np.testing.assert_array_equal(hi, [8, 8, 8])

    def test_no_overlap(self):
        a = Grid(1, (0, 0, 0), (4, 4, 4), n_root=8)
        b = Grid(1, (4, 4, 4), (4, 4, 4), n_root=8)
        assert a.overlap_with(b) is None

    def test_ghost_overlap_detects_adjacency(self):
        a = Grid(1, (0, 0, 0), (4, 4, 4), n_root=8, nghost=3)
        b = Grid(1, (4, 0, 0), (4, 4, 4), n_root=8, nghost=3)
        assert a.ghost_overlap_with(b) is not None

    def test_overlap_level_mismatch(self):
        a = Grid(0, (0, 0, 0), (8, 8, 8), n_root=8)
        b = Grid(1, (0, 0, 0), (8, 8, 8), n_root=8)
        with pytest.raises(ValueError):
            a.overlap_with(b)

    def test_nesting(self):
        parent = Grid(0, (0, 0, 0), (8, 8, 8), n_root=8)
        child = Grid(1, (4, 4, 4), (4, 4, 4), n_root=8)
        assert child.is_nested_in(parent)
        stray = Grid(1, (14, 14, 14), (4, 4, 4), n_root=8)
        assert not stray.is_nested_in(parent)

    def test_parent_index_region(self):
        child = Grid(1, (4, 6, 8), (4, 2, 2), n_root=8)
        lo, hi = child.parent_index_region()
        np.testing.assert_array_equal(lo, [2, 3, 4])
        np.testing.assert_array_equal(hi, [4, 4, 5])

    def test_contains_point(self):
        g = Grid(1, (4, 4, 4), (4, 4, 4), n_root=8)
        assert g.contains_point([0.3, 0.3, 0.3])[0]
        assert not g.contains_point([0.1, 0.3, 0.3])[0]

    def test_allocate_and_views(self):
        g = Grid(0, (0, 0, 0), (4, 4, 4), n_root=4)
        g.allocate(advected=["HI"])
        assert g.fields["density"].shape == g.shape_with_ghosts
        assert g.field_view("density").shape == (4, 4, 4)
        assert "HI" in g.fields
        assert g.memory_bytes() > 0

    def test_save_old_state(self):
        g = Grid(0, (0, 0, 0), (4, 4, 4), n_root=4)
        g.allocate()
        g.fields["density"][:] = 2.0
        g.save_old_state()
        g.fields["density"][:] = 3.0
        assert np.all(g.old_fields["density"] == 2.0)


class TestHierarchy:
    def _two_level(self):
        h = Hierarchy(n_root=8)
        child = Grid(1, (4, 4, 4), (8, 8, 8), n_root=8)
        h.add_grid(child, h.root)
        return h, child

    def test_root_setup(self):
        h = Hierarchy(n_root=8)
        assert h.max_level == 0
        assert h.n_grids == 1
        assert h.root.fields is not None

    def test_add_grid(self):
        h, child = self._two_level()
        assert h.max_level == 1
        assert child.parent is h.root
        assert child in h.root.children
        assert h.validate_nesting()

    def test_add_rejects_non_nested(self):
        h = Hierarchy(n_root=8)
        bad = Grid(1, (12, 12, 12), (8, 8, 8), n_root=8)
        with pytest.raises(ValueError):
            h.add_grid(bad, h.root)

    def test_remove_level_grids(self):
        h, child = self._two_level()
        g2 = Grid(2, (10, 10, 10), (4, 4, 4), n_root=8)
        h.add_grid(g2, child)
        h.remove_level_grids(1)
        assert h.max_level == 0
        assert h.root.children == []
        assert h.grids_destroyed == 2

    def test_siblings(self):
        h = Hierarchy(n_root=8)
        a = Grid(1, (0, 0, 0), (4, 4, 4), n_root=8)
        b = Grid(1, (4, 0, 0), (4, 4, 4), n_root=8)
        c = Grid(1, (12, 12, 12), (4, 4, 4), n_root=8)
        for g in (a, b, c):
            h.add_grid(g, h.root)
        sibs = h.siblings(a)
        assert b in sibs and c not in sibs

    def test_finest_grid_at(self):
        h, child = self._two_level()
        assert h.finest_grid_at([0.5, 0.5, 0.5]) is child
        assert h.finest_grid_at([0.1, 0.1, 0.1]) is h.root

    def test_finest_level_of_particles(self):
        from repro.nbody.particles import ParticleSet

        h, child = self._two_level()
        h.particles = ParticleSet(
            PositionDD(np.array([[0.5, 0.5, 0.5], [0.1, 0.1, 0.1]])),
            np.zeros((2, 3)),
            np.ones(2),
        )
        lv = h.finest_level_of_particles()
        np.testing.assert_array_equal(lv, [1, 0])

    def test_covering_mask(self):
        h, child = self._two_level()
        mask = h.covering_mask(h.root)
        assert mask.shape == (8, 8, 8)
        assert mask[3, 3, 3] and mask[2, 2, 2]
        assert not mask[0, 0, 0]
        assert mask.sum() == 4**3

    def test_sdr(self):
        h, _ = self._two_level()
        assert h.spatial_dynamic_range() == 16.0

    def test_grid_counters(self):
        h, _ = self._two_level()
        assert h.grids_created == 2
