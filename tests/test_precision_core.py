"""Unit tests for the double-double kernel layer (error-free transformations)."""

import numpy as np
import pytest

from repro.precision import core


def test_two_sum_exact_error():
    a, b = 1.0, 1e-30
    s, e = core.two_sum(a, b)
    assert s == 1.0
    assert e == 1e-30


def test_two_sum_commutes_in_value():
    a, b = 0.1, 0.7
    s1, e1 = core.two_sum(a, b)
    s2, e2 = core.two_sum(b, a)
    assert s1 == s2
    assert e1 == e2


def test_quick_two_sum_requires_ordering():
    s, e = core.quick_two_sum(1e10, 1e-10)
    assert s == 1e10
    assert e == 1e-10


def test_split_reconstructs():
    a = np.array([3.14159, -2.71828e100, 1e-200, 0.0])
    hi, lo = core.split(a)
    np.testing.assert_array_equal(hi + lo, a)


def test_two_prod_error_term():
    # 1 + 2^-53 squared: float64 product rounds, error term captures the rest
    a = 1.0 + 2.0**-53
    p, e = core.two_prod(a, a)
    from decimal import Decimal, getcontext

    getcontext().prec = 60
    exact = Decimal(a) * Decimal(a)
    assert Decimal(p) + Decimal(e) == exact


def test_dd_add_captures_tiny_increment():
    # This is the paper's core requirement: x + dx distinguishable from x
    # at dx/x ~ 1e-12 ... 1e-30.
    x_hi, x_lo = 0.5, 0.0
    dx = 1e-25
    s_hi, s_lo = core.dd_add_f64(x_hi, x_lo, dx)
    d_hi, d_lo = core.dd_sub(s_hi, s_lo, x_hi, x_lo)
    assert d_hi + d_lo == dx


def test_dd_add_vs_decimal():
    from decimal import Decimal, getcontext

    getcontext().prec = 60
    rng = np.random.default_rng(42)
    for _ in range(50):
        a = float(rng.uniform(-1, 1))
        b = float(rng.uniform(-1e-16, 1e-16))
        c = float(rng.uniform(-1, 1))
        d = float(rng.uniform(-1e-16, 1e-16))
        s_hi, s_lo = core.dd_add(a, b, c, d)
        exact = Decimal(a) + Decimal(b) + Decimal(c) + Decimal(d)
        got = Decimal(float(s_hi)) + Decimal(float(s_lo))
        assert abs(got - exact) <= abs(exact) * Decimal(1e-31) + Decimal(1e-320)


def test_dd_mul_vs_decimal():
    from decimal import Decimal, getcontext

    getcontext().prec = 60
    rng = np.random.default_rng(7)
    for _ in range(50):
        a = float(rng.uniform(-10, 10))
        c = float(rng.uniform(-10, 10))
        p_hi, p_lo = core.dd_mul(a, 0.0, c, 0.0)
        exact = Decimal(a) * Decimal(c)
        got = Decimal(float(p_hi)) + Decimal(float(p_lo))
        assert got == exact  # product of two f64 is exactly representable in dd


def test_dd_div_identity():
    rng = np.random.default_rng(3)
    a = rng.uniform(0.1, 10.0, 100)
    b = rng.uniform(0.1, 10.0, 100)
    q_hi, q_lo = core.dd_div(a, np.zeros_like(a), b, np.zeros_like(b))
    # multiply back
    p_hi, p_lo = core.dd_mul(q_hi, q_lo, b, np.zeros_like(b))
    err = np.abs((p_hi - a) + p_lo)
    assert np.all(err <= np.abs(a) * 1e-30)


def test_dd_sqrt_roundtrip():
    rng = np.random.default_rng(11)
    a = rng.uniform(1e-10, 1e10, 200)
    s_hi, s_lo = core.dd_sqrt(a, np.zeros_like(a))
    p_hi, p_lo = core.dd_mul(s_hi, s_lo, s_hi, s_lo)
    err = np.abs((p_hi - a) + p_lo)
    assert np.all(err <= np.abs(a) * 1e-30)


def test_dd_sqrt_zero_and_negative():
    hi, lo = core.dd_sqrt(np.array([0.0, -1.0]), np.zeros(2))
    assert hi[0] == 0.0 and lo[0] == 0.0
    assert np.isnan(hi[1])


def test_dd_abs():
    hi, lo = core.dd_abs(np.array([-1.0, 2.0]), np.array([1e-20, -1e-20]))
    np.testing.assert_array_equal(hi, [1.0, 2.0])
    np.testing.assert_array_equal(lo, [-1e-20, -1e-20])


def test_dd_compare_resolves_lo_word():
    # Two values identical in hi, differing only in lo
    c = core.dd_compare(1.0, 1e-20, 1.0, 2e-20)
    assert c == -1
    c = core.dd_compare(1.0, 2e-20, 1.0, 1e-20)
    assert c == 1
    c = core.dd_compare(1.0, 1e-20, 1.0, 1e-20)
    assert c == 0


def test_dd_compare_vectorised():
    a_hi = np.array([1.0, 2.0, 3.0])
    b_hi = np.array([1.0, 1.0, 4.0])
    out = core.dd_compare(a_hi, np.zeros(3), b_hi, np.zeros(3))
    np.testing.assert_array_equal(out, [0, 1, -1])


def test_precision_beyond_float64_paper_requirement():
    """Paper Sec 3.5: need dx/x ~ 1e-12 with 100x headroom -> 1e-14 minimum.

    Double-double delivers ~1e-31, far beyond the requirement; plain float64
    (~1e-16) fails when compounded over many operations.  Emulate refining a
    position 40 times by factors of 2 from level 0 to level 40 and check the
    offsets are still exactly recoverable.
    """
    x_hi, x_lo = 1.0 / 3.0, 0.0
    dx = 1.0
    offsets = []
    for level in range(40):
        dx *= 0.5
        offsets.append(dx)
        x_hi, x_lo = core.dd_add_f64(x_hi, x_lo, dx)
    # subtract them all back: must recover 1/3 to dd precision
    for off in reversed(offsets):
        x_hi, x_lo = core.dd_add_f64(x_hi, x_lo, -off)
    assert x_hi == 1.0 / 3.0
    assert abs(x_lo) < 1e-17  # the representation error of 1/3 in dd


@pytest.mark.parametrize("shape", [(5,), (3, 4), (2, 3, 4)])
def test_kernels_preserve_shapes(shape):
    rng = np.random.default_rng(0)
    a = rng.standard_normal(shape)
    z = np.zeros(shape)
    for fn in (core.dd_add, core.dd_sub, core.dd_mul, core.dd_div):
        hi, lo = fn(a, z, a + 1.5, z)
        assert hi.shape == shape and lo.shape == shape
