"""Cosmological AMR integration: the Zel'dovich pancake under refinement.

The pancake's caustic plane is exactly the kind of feature the paper's
refinement criteria chase; this test runs the pancake with AMR enabled and
checks (a) the caustic region gets refined, (b) the composite solution
still tracks the exact Zel'dovich map, and (c) nothing leaks mass.
"""

import numpy as np
import pytest

from repro.amr import HierarchyEvolver, RefinementCriteria
from repro.amr.evolve import CosmologyClock
from repro.amr.gravity import HierarchyGravity
from repro.amr.rebuild import rebuild_hierarchy
from repro.hydro import PPMSolver
from repro.problems import ZeldovichPancake


@pytest.fixture(scope="module")
def amr_pancake():
    zp = ZeldovichPancake(n=16, z_init=30.0, z_caustic=5.0)
    # swap the evolver for one with refinement enabled
    crit = RefinementCriteria(overdensity_threshold=1.6, max_level=1)
    clock = CosmologyClock(zp.friedmann, zp.units)
    grav = HierarchyGravity(g_code=zp.units.gravity_constant_code,
                            mean_density=1.0)
    ev = HierarchyEvolver(zp.hierarchy, PPMSolver(), gravity=grav,
                          criteria=crit, clock=clock, units=zp.units,
                          cfl=0.3, max_level=1)
    a_end = 1.0 / (1.0 + 10.0)
    t_end = (float(zp.friedmann.time_of_a(a_end)) - clock.t0_cgs) / zp.units.time_unit
    ev.advance_to(t_end)
    return zp, a_end


class TestAMRPancake:
    def test_caustic_region_refined(self, amr_pancake):
        zp, a_end = amr_pancake
        h = zp.hierarchy
        assert h.max_level == 1
        # the overdense sheet is at x ~ 0 (and periodic image at 1)
        refined_x = []
        for g in h.level_grids(1):
            refined_x.append(0.5 * (g.left_edge[0] + g.right_edge[0]))
        assert refined_x, "no refined grids over the caustic"
        assert min(min(x, 1 - x) for x in refined_x) < 0.35

    def test_density_tracks_exact(self, amr_pancake):
        zp, a_end = amr_pancake
        out = zp.profiles(a_end)
        err = np.abs(out["density"] - out["density_exact"]) / out["density_exact"]
        assert err.max() < 0.08

    def test_mass_conserved(self, amr_pancake):
        """Composite mass holds to O(dt^2)-per-step accuracy.

        Coarse/fine interfaces are exactly flux-corrected; *same-level*
        sibling interfaces are not (each grid computes its own fluxes from
        ghost data refreshed once per step, so under permuted sweeps the
        two sides can differ at second order — the standard SAMR
        behaviour).  The drift over this whole multi-hundred-step run must
        stay at the 1e-3 level."""
        zp, _ = amr_pancake
        h = zp.hierarchy
        covered = h.covering_mask(h.root)
        m = (h.root.field_view("density") * ~covered).sum() * h.root.dx**3
        for g in h.level_grids(1):
            m += g.field_view("density").sum() * g.dx**3
        assert m == pytest.approx(1.0, rel=1e-3)

    def test_nesting_and_positivity(self, amr_pancake):
        zp, _ = amr_pancake
        h = zp.hierarchy
        assert h.validate_nesting()
        for g in h.all_grids():
            assert np.all(g.field_view("density") > 0)
            assert np.all(np.isfinite(g.field_view("vx")))
