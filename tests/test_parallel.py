"""Tests for the virtual cluster and the paper's three parallel strategies."""

import numpy as np
import pytest

from repro.amr import Grid, Hierarchy
from repro.parallel import (
    SterileGrid,
    SterileHierarchy,
    Transfer,
    VirtualCluster,
    balance_grids,
    boundary_exchange_transfers,
    load_imbalance,
    run_blocking_exchange,
    run_pipelined_exchange,
    simulate_level_update,
)
from repro.parallel.sterile import find_siblings_with_probes


class TestVirtualCluster:
    def test_send_recv_timing(self):
        c = VirtualCluster(2, latency=1e-3, bandwidth=1e6)
        c.isend(0, 1, 1000, tag=7)
        msg = c.recv(1, src=0, tag=7)
        # arrival = 0 + latency + size/bw = 1e-3 + 1e-3 = 2e-3
        assert msg.arrival_time == pytest.approx(2e-3)
        assert c.clocks[1] == pytest.approx(2e-3)
        assert c.stats.wait_time == pytest.approx(2e-3)

    def test_compute_advances_clock(self):
        c = VirtualCluster(2)
        c.compute(0, 0.5)
        assert c.clocks[0] == 0.5
        assert c.clocks[1] == 0.0

    def test_recv_after_compute_no_wait(self):
        c = VirtualCluster(2, latency=1e-3, bandwidth=1e9)
        c.isend(0, 1, 8, tag=1)
        c.compute(1, 1.0)  # receiver busy past the arrival
        c.recv(1, src=0, tag=1)
        assert c.stats.wait_time == pytest.approx(0.0)

    def test_missing_message_raises(self):
        c = VirtualCluster(2)
        with pytest.raises(LookupError):
            c.recv(1)

    def test_probe_costs_roundtrip(self):
        c = VirtualCluster(4, latency=1e-4)
        c.probe(0, 3)
        assert c.stats.n_probes == 1
        assert c.clocks[0] == pytest.approx(2e-4)

    def test_barrier_syncs(self):
        c = VirtualCluster(3)
        c.compute(1, 2.0)
        c.barrier()
        assert c.clocks == [2.0, 2.0, 2.0]

    def test_rank_validation(self):
        c = VirtualCluster(2)
        with pytest.raises(ValueError):
            c.compute(5, 1.0)
        with pytest.raises(ValueError):
            VirtualCluster(0)

    def test_stats_accumulate(self):
        c = VirtualCluster(2)
        c.isend(0, 1, 100)
        c.isend(0, 1, 200, tag=1)
        assert c.stats.n_messages == 2
        assert c.stats.bytes_sent == 300


class TestSterileObjects:
    def _hierarchy(self):
        h = Hierarchy(n_root=8)
        a = Grid(1, (0, 0, 0), (8, 8, 8), n_root=8)
        b = Grid(1, (8, 0, 0), (8, 8, 8), n_root=8)
        c = Grid(1, (0, 8, 8), (8, 8, 8), n_root=8)
        for g in (a, b, c):
            h.add_grid(g, h.root)
        return h, (a, b, c)

    def test_from_grid(self):
        h, (a, _, _) = self._hierarchy()
        s = SterileGrid.from_grid(a)
        assert s.level == 1 and s.dims == (8, 8, 8)
        assert s.nbytes < 200

    def test_sterile_much_smaller_than_data(self):
        """The size ratio that makes full replication feasible."""
        h, (a, _, _) = self._hierarchy()
        s = SterileGrid.from_grid(a)
        assert s.data_nbytes() / s.nbytes > 1000

    def test_find_siblings_local(self):
        h, (a, b, c) = self._hierarchy()
        sh = SterileHierarchy.from_hierarchy(h)
        sa = next(s for s in sh.level(1) if s.grid_id == a.grid_id)
        sibs = sh.find_siblings(sa)
        ids = {s.grid_id for s in sibs}
        assert b.grid_id in ids
        # c shares only an edge through ghost zones in y/z; both coords
        # overlap via ghosts so it is found too
        assert len(ids) >= 1

    def test_sterile_lookup_needs_no_probes(self):
        h, (a, _, _) = self._hierarchy()
        sh = SterileHierarchy.from_hierarchy(h)
        cluster = VirtualCluster(4)
        sa = next(s for s in sh.level(1) if s.grid_id == a.grid_id)
        sh.find_siblings(sa)
        assert cluster.stats.n_probes == 0

    def test_probe_based_lookup_costs(self):
        h, grids = self._hierarchy()
        sh = SterileHierarchy.from_hierarchy(h)
        cluster = VirtualCluster(4)
        steriles = sh.level(1)
        by_rank = {0: [steriles[0]], 1: [steriles[1]], 2: [steriles[2]], 3: []}
        found = find_siblings_with_probes(steriles[0], cluster, 0, by_rank)
        assert cluster.stats.n_probes == 3  # every other rank probed
        assert {s.grid_id for s in found} == {
            s.grid_id for s in sh.find_siblings(steriles[0])
        }


class TestLoadBalancing:
    def _steriles(self, n=40, seed=0):
        rng = np.random.default_rng(seed)
        out = []
        for i in range(n):
            level = int(rng.integers(0, 4))
            dims = tuple(int(d) for d in rng.integers(4, 20, 3))
            out.append(SterileGrid(i, level, (0, 0, 0), dims, 0))
        return out

    @pytest.mark.parametrize("strategy", ["round_robin", "greedy", "level_blocks"])
    def test_all_grids_assigned(self, strategy):
        s = self._steriles()
        a = balance_grids(s, 8, strategy)
        assert set(a.keys()) == {g.grid_id for g in s}
        assert all(0 <= r < 8 for r in a.values())

    def test_greedy_beats_round_robin(self):
        s = self._steriles(n=64, seed=3)
        rr = load_imbalance(s, balance_grids(s, 8, "round_robin"), 8)
        gr = load_imbalance(s, balance_grids(s, 8, "greedy"), 8)
        assert gr <= rr
        assert gr < 1.5

    def test_imbalance_at_least_one(self):
        s = self._steriles()
        for strategy in ("round_robin", "greedy", "level_blocks"):
            imb = load_imbalance(s, balance_grids(s, 8, strategy), 8)
            assert imb >= 1.0 - 1e-12

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            balance_grids(self._steriles(), 4, "magic")


class TestPipeline:
    def _transfers(self, n=30, seed=1, n_ranks=4):
        rng = np.random.default_rng(seed)
        out = []
        for i in range(n):
            src, dst = rng.choice(n_ranks, size=2, replace=False)
            out.append(
                Transfer(int(src), int(dst), int(rng.integers(1_000, 200_000)),
                         need_order=i)
            )
        return out

    def test_pipelined_faster(self):
        """The paper's claim: ordered async sends cut wait time a lot."""
        transfers = self._transfers()
        c1 = VirtualCluster(4)
        t_block = run_blocking_exchange(c1, transfers)
        c2 = VirtualCluster(4)
        t_pipe = run_pipelined_exchange(c2, transfers)
        assert t_pipe < t_block
        assert c2.stats.wait_time < c1.stats.wait_time

    def test_same_bytes_either_way(self):
        transfers = self._transfers()
        c1 = VirtualCluster(4)
        run_blocking_exchange(c1, transfers)
        c2 = VirtualCluster(4)
        run_pipelined_exchange(c2, transfers)
        assert c1.stats.bytes_sent == c2.stats.bytes_sent
        assert c1.stats.n_messages == c2.stats.n_messages

    def test_local_transfers_skip_wire(self):
        t = [Transfer(0, 0, 10_000, 0)]
        c = VirtualCluster(2)
        run_pipelined_exchange(c, t)
        assert c.stats.n_messages == 0


class TestAMRModel:
    def _hierarchy(self):
        h = Hierarchy(n_root=8)
        for i in range(4):
            g = Grid(1, (4 * i % 16, 0, 0), (4, 8, 8), n_root=8)
            try:
                h.add_grid(g, h.root)
            except ValueError:
                pass
        return h

    def test_transfers_built(self):
        h = self._hierarchy()
        sh = SterileHierarchy.from_hierarchy(h)
        assignment = balance_grids(
            [s for lvl in sh.by_level.values() for s in lvl], 4, "greedy"
        )
        transfers = boundary_exchange_transfers(sh, assignment, 1)
        assert len(transfers) >= 2
        assert all(t.size_bytes > 0 for t in transfers)

    def test_strategy_matrix(self):
        """sterile+pipeline dominates each degraded configuration."""
        h = self._hierarchy()
        sh = SterileHierarchy.from_hierarchy(h)
        steriles = [s for lvl in sh.by_level.values() for s in lvl]
        assignment = balance_grids(steriles, 4, "greedy")
        results = {}
        for sterile in (True, False):
            for pipe in (True, False):
                results[(sterile, pipe)] = simulate_level_update(
                    sh, assignment, 4, level=1, use_sterile=sterile,
                    use_pipeline=pipe,
                )
        best = results[(True, True)]
        assert best["probes"] == 0
        assert results[(False, True)]["probes"] > 0
        assert best["makespan"] <= results[(False, False)]["makespan"]
        assert best["wait_time"] <= results[(True, False)]["wait_time"]
