"""Tests for the problem setups (validation + the paper's workload)."""

import numpy as np
import pytest

from repro.problems import PrimordialCollapse, SodShockTube, SphereCollapse, ZeldovichPancake


class TestSodProblem:
    def test_runs_and_converges(self):
        sod = SodShockTube(n=64)
        prof = sod.run(0.2)
        assert sod.l1_error() < 0.03
        assert "density_exact" in prof

    def test_zeus_cross_check(self):
        """The paper's double-check: both solvers agree on the tube."""
        from repro.hydro import ZeusSolver

        a = SodShockTube(n=64)
        a.run(0.2)
        b = SodShockTube(n=64)
        b.run(0.2, solver=ZeusSolver(gamma=1.4))
        d = np.abs(a.profiles()["density"] - b.profiles()["density"])
        assert d.mean() < 0.03

    def test_custom_states(self):
        sod = SodShockTube(n=32, left=(1.0, 0.0, 2.0), right=(0.5, 0.0, 0.5))
        sod.run(0.1)
        assert np.all(sod.profiles()["density"] > 0)


class TestZeldovichProblem:
    @pytest.fixture(scope="class")
    def result(self):
        zp = ZeldovichPancake(n=16, z_init=30.0, z_caustic=5.0)
        return zp.run(z_end=15.0)

    def test_density_matches_exact(self, result):
        err = np.abs(result["density"] - result["density_exact"]) / result["density_exact"]
        assert err.max() < 0.05

    def test_velocity_matches_exact(self, result):
        scale = np.abs(result["velocity_exact"]).max()
        err = np.abs(result["velocity"] - result["velocity_exact"]).max()
        assert err < 0.1 * scale

    def test_growth_amplifies_contrast(self, result):
        # z 30 -> 15: contrast must have grown relative to the initial one
        zp = ZeldovichPancake(n=16, z_init=30.0, z_caustic=5.0)
        rho0 = zp.exact_density(np.linspace(0, 1, 16), zp.a_init)
        assert result["density"].max() > rho0.max()


class TestSphereCollapse:
    @pytest.fixture(scope="class")
    def collapsed(self):
        sc = SphereCollapse(n_root=8, max_level=2, overdensity=20.0)
        out = sc.run(max_root_steps=25)
        return sc, out

    def test_density_grows(self, collapsed):
        sc, out = collapsed
        assert out["peak_density"] > 30.0

    def test_hierarchy_deepens(self, collapsed):
        sc, out = collapsed
        assert out["max_level"] >= 1
        assert out["sdr"] >= 16.0

    def test_stats_recorded(self, collapsed):
        sc, _ = collapsed
        assert len(sc.stats.times) > 0
        assert sc.stats.n_grids[-1] >= 1

    def test_solution_finite_positive(self, collapsed):
        sc, _ = collapsed
        for g in sc.hierarchy.all_grids():
            rho = g.field_view("density")
            assert np.all(np.isfinite(rho)) and np.all(rho > 0)

    def test_nesting_maintained(self, collapsed):
        sc, _ = collapsed
        assert sc.hierarchy.validate_nesting()

    def test_envelope_slope_isothermal(self, collapsed):
        """The collapse envelope steepens toward the rho ~ r^-2 profile the
        paper marks in Fig. 4A (Larson-Penston / singular isothermal
        sphere).  At this resolution we check the slope is in the right
        band rather than exactly -2."""
        from repro.analysis import radial_profiles

        sc, _ = collapsed
        prof = radial_profiles(sc.hierarchy, nbins=12, rmax=0.3)
        r, rho = prof["radius"], prof["density"]
        ok = np.isfinite(rho) & (rho > 2.0)
        if ok.sum() >= 4:
            slope = np.polyfit(np.log(r[ok]), np.log(rho[ok]), 1)[0]
            assert -3.5 < slope < -0.7, f"envelope slope {slope}"


class TestPrimordialCollapse:
    @pytest.fixture(scope="class")
    def run(self):
        pc = PrimordialCollapse(
            n_root=8, max_level=2, amplitude_boost=4.0, seed=7,
            with_chemistry=True, with_dark_matter=True,
        )
        pc.initial_rebuild()
        return pc

    def test_setup_species_sum(self, run):
        from repro.chemistry.species import SPECIES_NAMES

        root = run.hierarchy.root
        total = sum(root.field_view(s) for s in SPECIES_NAMES if s != "de")
        np.testing.assert_allclose(total, root.field_view("density"), rtol=1e-6)

    def test_setup_particles(self, run):
        assert len(run.hierarchy.particles) == 8**3
        cdm = run.params.omega_cdm / run.params.omega_matter
        assert np.isclose(run.hierarchy.particles.total_mass, cdm, rtol=1e-10)

    def test_short_evolution(self, run):
        z0 = run.current_redshift
        out = run.run_to_redshift(z0 - 6.0, max_root_steps=30)
        assert out["redshift"] < z0
        for g in run.hierarchy.all_grids():
            assert np.all(np.isfinite(g.field_view("density")))
            assert np.all(g.field_view("internal") > 0)

    def test_snapshot_profiles(self, run):
        snap = run.snapshot("test")
        prof = snap["profiles"]
        assert "number_density" in prof
        assert "f_H2" in prof
        assert np.nanmax(prof["number_density"]) > 0

    def test_static_nested_ic(self):
        pc = PrimordialCollapse(
            n_root=8, max_level=3, static_levels=1, amplitude_boost=4.0,
            with_chemistry=False, with_dark_matter=True, seed=3,
        )
        assert pc.hierarchy.max_level >= 1
        assert pc.hierarchy.validate_nesting()
        # refined-region particles are lighter
        m = pc.hierarchy.particles.masses
        assert m.max() / m.min() == pytest.approx(8.0, rel=1e-6)

    def test_chemistry_off_runs(self):
        pc = PrimordialCollapse(
            n_root=8, max_level=1, with_chemistry=False,
            with_dark_matter=False, amplitude_boost=4.0,
        )
        pc.initial_rebuild()
        out = pc.run_to_redshift(95.0, max_root_steps=10)
        assert out["redshift"] <= 100.0
